package history

import (
	"fmt"
	"sort"

	"siterecovery/internal/proto"
)

// maxBruteForceTxns bounds the factorial search of OneSRBruteForce.
const maxBruteForceTxns = 9

// BruteResult is the outcome of the exact 1-SR decision procedure.
type BruteResult struct {
	// OneSR reports whether some one-copy serial order is equivalent to
	// the history.
	OneSR bool
	// Witness is an equivalent serial order when OneSR is true.
	Witness []proto.TxnID
}

// OneSRBruteForce decides one-serializability exactly by enumerating every
// serial order of the committed non-copier transactions that touch the
// domain and comparing READ-FROM relations (§4.1). With checkFinal set it
// additionally requires the final database state to match (the augmented
// history's final transaction), which presumes all copies have converged —
// quiesce and fully recover the cluster first.
//
// It refuses histories with more than 9 relevant transactions.
func (h *History) OneSRBruteForce(domain Domain, checkFinal bool) (BruteResult, error) {
	type txnOps struct {
		id     proto.TxnID
		reads  map[proto.Item]proto.TxnID // item -> writer read from
		writes map[proto.Item]bool
	}

	relevant := make(map[proto.TxnID]*txnOps)
	finalWriter := make(map[proto.Item]map[proto.SiteID]proto.TxnID)

	for _, op := range h.Ops(domain) {
		info := h.txns[op.Txn]
		if info.Class == proto.ClassCopier {
			// Copiers are invisible to the one-copy serial history, but
			// their installs define copy final states.
			if op.Kind == OpWrite {
				if finalWriter[op.Item] == nil {
					finalWriter[op.Item] = make(map[proto.SiteID]proto.TxnID)
				}
				finalWriter[op.Item][op.Site] = op.Writer
			}
			continue
		}
		t, ok := relevant[op.Txn]
		if !ok {
			t = &txnOps{
				id:     op.Txn,
				reads:  make(map[proto.Item]proto.TxnID),
				writes: make(map[proto.Item]bool),
			}
			relevant[op.Txn] = t
		}
		switch op.Kind {
		case OpRead:
			if op.Writer == op.Txn {
				// Reading one's own write is trivially consistent in any
				// serial order; it constrains nothing.
				break
			}
			if prev, dup := t.reads[op.Item]; dup && prev != op.Writer {
				// The same transaction observed two different versions of
				// one logical item: impossible in any one-copy serial
				// history.
				return BruteResult{}, nil
			}
			t.reads[op.Item] = op.Writer
		case OpWrite:
			if op.Writer == op.Txn {
				t.writes[op.Item] = true
			}
			if finalWriter[op.Item] == nil {
				finalWriter[op.Item] = make(map[proto.SiteID]proto.TxnID)
			}
			finalWriter[op.Item][op.Site] = op.Writer
		}
	}

	ids := make([]proto.TxnID, 0, len(relevant))
	for id := range relevant {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > maxBruteForceTxns {
		return BruteResult{}, fmt.Errorf("history has %d relevant transactions, brute force capped at %d", len(ids), maxBruteForceTxns)
	}

	inSet := make(map[proto.TxnID]bool, len(ids))
	for _, id := range ids {
		inSet[id] = true
	}

	// Final-state requirement: all copies of an item must agree on their
	// last writer; the serial order's last writer must match it.
	finalLogical := make(map[proto.Item]proto.TxnID)
	if checkFinal {
		for item, sites := range finalWriter {
			var w proto.TxnID
			first := true
			for _, sw := range sites {
				if first {
					w, first = sw, false
					continue
				}
				if sw != w {
					// Divergent copies: no one-copy serial history has a
					// final transaction reading two versions of one item.
					return BruteResult{}, nil
				}
			}
			finalLogical[item] = w
		}
	}

	matches := func(order []proto.TxnID) bool {
		last := make(map[proto.Item]proto.TxnID, 8)
		for _, id := range order {
			t := relevant[id]
			for item, from := range t.reads {
				cur, written := last[item]
				switch {
				case !written:
					// Serial execution reads the initial version: the
					// actual read must come from outside the transaction
					// set (the synthetic initial transaction).
					if inSet[from] {
						return false
					}
				case cur != from:
					return false
				}
			}
			for item := range t.writes {
				last[item] = id
			}
		}
		if checkFinal {
			for item, want := range finalLogical {
				cur, written := last[item]
				switch {
				case !written:
					if inSet[want] {
						return false
					}
				case cur != want:
					return false
				}
			}
		}
		return true
	}

	order := make([]proto.TxnID, len(ids))
	copy(order, ids)
	var permute func(k int) bool
	permute = func(k int) bool {
		if k == len(order) {
			return matches(order)
		}
		for i := k; i < len(order); i++ {
			order[k], order[i] = order[i], order[k]
			if permute(k + 1) {
				return true
			}
			order[k], order[i] = order[i], order[k]
		}
		return false
	}
	if permute(0) {
		witness := make([]proto.TxnID, len(order))
		copy(witness, order)
		return BruteResult{OneSR: true, Witness: witness}, nil
	}
	return BruteResult{}, nil
}
