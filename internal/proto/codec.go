package proto

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// The wire codec: a self-describing envelope that lets a real network
// transport (internal/transport/tcpnet) frame any protocol message as
// bytes and reconstruct the concrete Go value — and the protocol error
// taxonomy — on the other side. The in-process simulator never serializes;
// both transports carry exactly the vocabulary defined in this package.

// Envelope is the wire form of a Message: the Kind tag names the concrete
// type, Body is its JSON encoding.
type Envelope struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body,omitempty"`
}

// decoders maps each message kind to a function that decodes its body into
// the concrete value type handlers switch on.
var decoders = map[string]func(json.RawMessage) (Message, error){}

func register[T Message](kind string) {
	decoders[kind] = func(body json.RawMessage) (Message, error) {
		var v T
		if len(body) > 0 {
			if err := json.Unmarshal(body, &v); err != nil {
				return nil, fmt.Errorf("decode %s body: %w", kind, err)
			}
		}
		return v, nil
	}
}

func init() {
	register[ReadReq](ReadReq{}.Kind())
	register[ReadResp](ReadResp{}.Kind())
	register[WriteReq](WriteReq{}.Kind())
	register[WriteResp](WriteResp{}.Kind())
	register[BatchReq](BatchReq{}.Kind())
	register[BatchResp](BatchResp{}.Kind())
	register[PrepareReq](PrepareReq{}.Kind())
	register[PrepareResp](PrepareResp{}.Kind())
	register[CommitReq](CommitReq{}.Kind())
	register[CommitResp](CommitResp{}.Kind())
	register[AbortReq](AbortReq{}.Kind())
	register[AbortResp](AbortResp{}.Kind())
	register[DecisionReq](DecisionReq{}.Kind())
	register[DecisionResp](DecisionResp{}.Kind())
	register[ProbeReq](ProbeReq{}.Kind())
	register[ProbeResp](ProbeResp{}.Kind())
	register[MissedFetchReq](MissedFetchReq{}.Kind())
	register[MissedFetchResp](MissedFetchResp{}.Kind())
	register[SpoolAppendReq](SpoolAppendReq{}.Kind())
	register[SpoolAppendResp](SpoolAppendResp{}.Kind())
	register[SpoolFetchReq](SpoolFetchReq{}.Kind())
	register[SpoolFetchResp](SpoolFetchResp{}.Kind())
}

// MessageKinds lists every registered message kind in sorted order.
func MessageKinds() []string {
	kinds := make([]string, 0, len(decoders))
	for k := range decoders {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// EncodeMessage frames a message as a self-describing envelope.
func EncodeMessage(m Message) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("encode: nil message")
	}
	kind := m.Kind()
	if _, ok := decoders[kind]; !ok {
		return nil, fmt.Errorf("encode: unregistered message kind %q (%T)", kind, m)
	}
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("encode %s: %w", kind, err)
	}
	return json.Marshal(Envelope{Kind: kind, Body: body})
}

// DecodeMessage reconstructs the concrete message value from an envelope.
func DecodeMessage(data []byte) (Message, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("decode envelope: %w", err)
	}
	dec, ok := decoders[env.Kind]
	if !ok {
		return nil, fmt.Errorf("decode: unknown message kind %q", env.Kind)
	}
	return dec(env.Body)
}

// errorCodes maps the sentinel taxonomy of errors.go to stable wire codes.
// An error that wraps one of these travels as its code plus the full
// message text, and is reconstructed on the receiving side so errors.Is
// still matches the sentinel — the transaction managers' retry decisions
// work identically over TCP and in process. Encoding picks the FIRST
// matching entry, so sentinels that wrap another sentinel (ErrNoReplica
// wraps ErrUnavailable) must precede the one they wrap.
var errorCodes = []struct {
	code     string
	sentinel error
}{
	{"site_down", ErrSiteDown},
	{"dropped", ErrDropped},
	{"session_mismatch", ErrSessionMismatch},
	{"not_operational", ErrNotOperational},
	{"unreadable", ErrUnreadable},
	{"lock_timeout", ErrLockTimeout},
	{"wounded", ErrWounded},
	{"txn_aborted", ErrTxnAborted},
	{"unknown_txn", ErrUnknownTxn},
	{"txn_finished", ErrTxnFinished},
	{"no_replica", ErrNoReplica},
	{"unavailable", ErrUnavailable},
	{"no_quorum", ErrNoQuorum},
	{"total_failure", ErrTotalFailure},
	{"abort_requested", ErrAbortRequested},
	{"unknown_policy", ErrUnknownPolicy},
}

// WireSentinels lists every protocol error sentinel registered in the wire
// table, in table order. The codec tests walk it — together with a source
// scan of errors.go — so a newly exported sentinel cannot be silently
// missing from the wire mapping.
func WireSentinels() []error {
	out := make([]error, len(errorCodes))
	for i, e := range errorCodes {
		out[i] = e.sentinel
	}
	return out
}

// WireError is the wire form of a handler error.
type WireError struct {
	// Code identifies the wrapped sentinel; empty for errors outside the
	// protocol taxonomy.
	Code string `json:"code,omitempty"`
	// Msg is the full rendered error text.
	Msg string `json:"msg"`
}

// EncodeError converts a handler error to its wire form.
func EncodeError(err error) *WireError {
	if err == nil {
		return nil
	}
	w := &WireError{Msg: err.Error()}
	for _, e := range errorCodes {
		if errors.Is(err, e.sentinel) {
			w.Code = e.code
			break
		}
	}
	return w
}

// remoteError carries a decoded wire error: the original text, wrapping the
// matched sentinel so errors.Is keeps working across the wire.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// Err reconstructs the Go error, re-attaching the matched sentinel.
func (w *WireError) Err() error {
	if w == nil {
		return nil
	}
	for _, e := range errorCodes {
		if e.code == w.Code {
			if w.Msg == e.sentinel.Error() {
				return e.sentinel
			}
			return &remoteError{msg: w.Msg, sentinel: e.sentinel}
		}
	}
	return errors.New(w.Msg)
}
