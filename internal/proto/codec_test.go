package proto

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// wireSamples returns one populated value per message kind, exercising the
// edge fields a naive codec would drop (Expect, MissedBy, NoRecord, nested
// maps and slices).
func wireSamples() []Message {
	return []Message{
		ReadReq{
			Txn:      TxnMeta{ID: 42, Class: ClassUser, Origin: 3},
			Item:     "x",
			Mode:     CheckSession,
			Expect:   7,
			Copier:   true,
			ReadOld:  true,
			NoRecord: true,
		},
		ReadResp{Value: -9, Version: Version{Counter: 12, Writer: 42}},
		WriteReq{
			Txn:      TxnMeta{ID: 43, Class: ClassCopier, Origin: 1},
			Item:     NSItem(2),
			Value:    77,
			Mode:     CheckSession,
			Expect:   3,
			MissedBy: []SiteID{2, 5},
		},
		WriteResp{},
		BatchReq{
			Txn:    TxnMeta{ID: 48, Class: ClassUser, Origin: 2},
			Mode:   CheckSession,
			Expect: 4,
			Ops: []BatchOp{
				{Item: "x", Value: 10, MissedBy: []SiteID{3}},
				{Item: "y", Value: -2},
			},
			Prepare: true,
		},
		BatchResp{Vote: true, MaxSeq: 71},
		PrepareReq{Txn: TxnMeta{ID: 44, Class: ClassControl1, Origin: 2}},
		PrepareResp{Vote: true, MaxSeq: 64},
		CommitReq{Txn: TxnMeta{ID: 44, Class: ClassControl2, Origin: 2}, CommitSeq: 99},
		CommitResp{},
		AbortReq{Txn: TxnMeta{ID: 45, Class: ClassUser, Origin: 4}, ReadOnlyEnd: true},
		AbortResp{},
		DecisionReq{Txn: 46},
		DecisionResp{State: StateCommitted, CommitSeq: 100},
		ProbeReq{},
		ProbeResp{Operational: true, Session: 5},
		MissedFetchReq{For: 3},
		MissedFetchResp{
			Missed: []Item{"a", "b"},
			Others: map[SiteID][]Item{4: {"c"}, 5: {"d", "e"}},
		},
		SpoolAppendReq{For: 2, Item: "x", Value: 11, CommitSeq: 8, Writer: 40},
		SpoolAppendResp{},
		SpoolFetchReq{For: 1},
		SpoolFetchResp{Updates: []SpooledUpdate{
			{Item: "x", Value: 1, CommitSeq: 2, Writer: 3},
			{Item: "y", Value: -4, CommitSeq: 5, Writer: 6},
		}},
	}
}

func TestCodecRoundTripsEveryKind(t *testing.T) {
	samples := wireSamples()
	covered := make(map[string]bool, len(samples))
	for _, msg := range samples {
		covered[msg.Kind()] = true
		data, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("encode %s: %v", msg.Kind(), err)
		}
		got, err := DecodeMessage(data)
		if err != nil {
			t.Fatalf("decode %s: %v", msg.Kind(), err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%s round trip:\n got %#v\nwant %#v", msg.Kind(), got, msg)
		}
	}
	// Every registered kind must have a sample, so a new message type cannot
	// ship without wire coverage.
	for _, kind := range MessageKinds() {
		if !covered[kind] {
			t.Errorf("registered kind %q has no round-trip sample", kind)
		}
	}
	if len(covered) != len(MessageKinds()) {
		t.Errorf("samples cover %d kinds, registry has %d", len(covered), len(MessageKinds()))
	}
}

func TestDecodeRejectsUnknownKindAndGarbage(t *testing.T) {
	if _, err := DecodeMessage([]byte(`{"kind":"nope","body":{}}`)); err == nil {
		t.Error("unknown kind decoded without error")
	}
	if _, err := DecodeMessage([]byte(`not json`)); err == nil {
		t.Error("garbage decoded without error")
	}
	if _, err := DecodeMessage([]byte(`{"kind":"read","body":[1,2]}`)); err == nil {
		t.Error("mistyped body decoded without error")
	}
}

func TestWireErrorPreservesSentinels(t *testing.T) {
	cases := []error{
		ErrSiteDown,
		ErrDropped,
		ErrSessionMismatch,
		ErrNotOperational,
		ErrUnreadable,
		ErrLockTimeout,
		ErrWounded,
		ErrTxnAborted,
		ErrUnknownTxn,
		ErrUnavailable,
		ErrNoQuorum,
		ErrTotalFailure,
		ErrAbortRequested,
	}
	for _, sentinel := range cases {
		wrapped := fmt.Errorf("site2 serving t9: %w", sentinel)
		back := EncodeError(wrapped).Err()
		if !errors.Is(back, sentinel) {
			t.Errorf("sentinel %v lost across the wire (got %v)", sentinel, back)
		}
		if back.Error() != wrapped.Error() {
			t.Errorf("error text changed: got %q, want %q", back.Error(), wrapped.Error())
		}
		if Retryable(wrapped) != Retryable(back) {
			t.Errorf("retryability of %v changed across the wire", sentinel)
		}
		// A bare sentinel comes back as the identical value.
		if got := EncodeError(sentinel).Err(); got != sentinel {
			t.Errorf("bare sentinel %v reconstructed as %v", sentinel, got)
		}
	}
	// Errors outside the taxonomy keep their text but no sentinel.
	opaque := errors.New("disk on fire")
	back := EncodeError(opaque).Err()
	if back.Error() != opaque.Error() {
		t.Errorf("opaque error text changed: %q", back.Error())
	}
	if Retryable(back) {
		t.Error("opaque error became retryable")
	}
	if EncodeError(nil) != nil {
		t.Error("EncodeError(nil) != nil")
	}
	var nilWire *WireError
	if nilWire.Err() != nil {
		t.Error("nil WireError.Err() != nil")
	}
}
