package proto

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// exportedSentinelNames scans errors.go for every exported package-level
// variable whose name starts with "Err". Driving the round-trip test from
// the source keeps the wire-error table honest: adding a sentinel without
// registering it fails here, not in a cross-process debugging session.
func exportedSentinelNames(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "errors.go", nil, 0)
	if err != nil {
		t.Fatalf("parse errors.go: %v", err)
	}
	var names []string
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if name.IsExported() && len(name.Name) > 3 && name.Name[:3] == "Err" {
					names = append(names, name.Name)
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("no exported Err* sentinels found in errors.go")
	}
	return names
}

// sentinelByName maps every exported sentinel name to its value. The
// completeness of this map is enforced against the source scan above.
var sentinelByName = map[string]error{
	"ErrSiteDown":        ErrSiteDown,
	"ErrDropped":         ErrDropped,
	"ErrSessionMismatch": ErrSessionMismatch,
	"ErrNotOperational":  ErrNotOperational,
	"ErrUnreadable":      ErrUnreadable,
	"ErrLockTimeout":     ErrLockTimeout,
	"ErrWounded":         ErrWounded,
	"ErrTxnAborted":      ErrTxnAborted,
	"ErrUnknownTxn":      ErrUnknownTxn,
	"ErrUnavailable":     ErrUnavailable,
	"ErrNoQuorum":        ErrNoQuorum,
	"ErrTotalFailure":    ErrTotalFailure,
	"ErrAbortRequested":  ErrAbortRequested,
	"ErrTxnFinished":     ErrTxnFinished,
	"ErrNoReplica":       ErrNoReplica,
	"ErrUnknownPolicy":   ErrUnknownPolicy,
}

// TestEverySentinelRoundTripsWire asserts that every exported proto.Err*
// sentinel (a) is registered in the wire-error table and (b) survives an
// encode → JSON → decode cycle with errors.Is intact, both bare and wrapped
// with caller context.
func TestEverySentinelRoundTripsWire(t *testing.T) {
	registered := make(map[error]bool)
	for _, s := range WireSentinels() {
		registered[s] = true
	}
	for _, name := range exportedSentinelNames(t) {
		sentinel, ok := sentinelByName[name]
		if !ok {
			t.Errorf("sentinel %s is exported from errors.go but missing from the test map; add it here and to the wire table", name)
			continue
		}
		if !registered[sentinel] {
			t.Errorf("sentinel %s is not registered in the wire-error table", name)
			continue
		}
		for _, err := range []error{
			sentinel,
			fmt.Errorf("site 3 serving txn 17: %w", sentinel),
		} {
			data, merr := json.Marshal(EncodeError(err))
			if merr != nil {
				t.Fatalf("%s: marshal wire error: %v", name, merr)
			}
			var w WireError
			if merr := json.Unmarshal(data, &w); merr != nil {
				t.Fatalf("%s: unmarshal wire error: %v", name, merr)
			}
			got := w.Err()
			if !errors.Is(got, sentinel) {
				t.Errorf("%s: errors.Is lost across the wire (%q -> %q)", name, err, got)
			}
			if got.Error() != err.Error() {
				t.Errorf("%s: message changed across the wire: %q -> %q", name, err, got)
			}
		}
	}
}

// TestNoReplicaWrapsUnavailable pins the compatibility contract of the PR 5
// sentinel split: ErrNoReplica must keep matching ErrUnavailable so retry
// classification and abort-reason labels are unchanged, and its wire code
// must be the more specific one.
func TestNoReplicaWrapsUnavailable(t *testing.T) {
	if !errors.Is(ErrNoReplica, ErrUnavailable) {
		t.Fatal("ErrNoReplica must wrap ErrUnavailable")
	}
	if w := EncodeError(fmt.Errorf("write %q: %w", "x", ErrNoReplica)); w.Code != "no_replica" {
		t.Fatalf("ErrNoReplica encoded as %q, want no_replica", w.Code)
	}
	if w := EncodeError(fmt.Errorf("read %q: %w", "x", ErrUnavailable)); w.Code != "unavailable" {
		t.Fatalf("ErrUnavailable encoded as %q, want unavailable", w.Code)
	}
	got := (&WireError{Code: "no_replica", Msg: "write: " + ErrNoReplica.Error()}).Err()
	if !errors.Is(got, ErrUnavailable) || !errors.Is(got, ErrNoReplica) {
		t.Fatalf("decoded no_replica error lost sentinel chain: %v", got)
	}
}
