package proto

import "testing"

// TestDecodeMessageIgnoresUnknownFields pins the forward-compatibility
// contract the wire codec relies on: an envelope produced by a NEWER peer —
// extra top-level fields (like a trace block) and extra fields inside the
// message body — decodes cleanly on this (the "older") side, with the known
// fields intact and the unknown ones dropped. Without this property every
// added field would need a protocol version bump.
func TestDecodeMessageIgnoresUnknownFields(t *testing.T) {
	const body = `{"Txn":{"ID":9,"Class":1,"Origin":2},"Item":"x","Expect":3`
	cases := []struct {
		name string
		data string
	}{
		{"extra envelope fields", `{"kind":"read","body":` + body + `},` +
			`"trace":{"root":9,"span":281474976710659,"parent":7,"origin":1},"hints":["a","b"]}`},
		{"extra body fields", `{"kind":"read","body":` + body +
			`,"priority":"high","deadline_ns":123456789,"nested":{"deep":[1,2]}}}`},
		{"extra everywhere", `{"v":2,"kind":"read","compression":null,` +
			`"body":` + body + `,"future":true}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			msg, err := DecodeMessage([]byte(c.data))
			if err != nil {
				t.Fatalf("DecodeMessage: %v", err)
			}
			rr, ok := msg.(ReadReq)
			if !ok {
				t.Fatalf("decoded %T, want ReadReq", msg)
			}
			if rr.Txn.ID != 9 || rr.Txn.Origin != 2 || rr.Item != "x" || rr.Expect != 3 {
				t.Errorf("known fields mutated: %+v", rr)
			}
		})
	}
}
