package proto

import (
	"reflect"
	"testing"
)

// FuzzCodecRoundTrip feeds arbitrary bytes to the wire decoder. Any input
// the decoder accepts must re-encode and decode to the same value: the
// codec's fixed point is reached after one round trip. The seed corpus
// covers every registered message kind, including the edge fields
// (Expect, MissedBy, NoRecord) that only some call sites populate.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, msg := range wireSamples() {
		data, err := EncodeMessage(msg)
		if err != nil {
			f.Fatalf("seed encode %s: %v", msg.Kind(), err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"kind":"read"}`))                             // missing body
	f.Add([]byte(`{"kind":"missed.fetch.resp","body":{}}`))      // empty maps
	f.Add([]byte(`{"kind":"write","body":{"MissedBy":[]}}`))     // empty slice edge
	f.Add([]byte(`{"kind":"read","body":{"NoRecord":true}}`))    // bool edge
	f.Add([]byte(`{"kind":"write","body":{"Expect":18446744}}`)) // big session

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("decoded %q but cannot re-encode %#v: %v", data, msg, err)
		}
		again, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-encoded form %q does not decode: %v", re, err)
		}
		if !reflect.DeepEqual(msg, again) {
			t.Fatalf("round trip not stable:\nfirst  %#v\nsecond %#v", msg, again)
		}
	})
}
