package proto

// Message is implemented by every request and response that crosses the
// simulated network. Kind returns a stable short name used for per-type
// message accounting.
type Message interface {
	Kind() string
}

// ReadReq asks a data manager for the committed value of its local copy of
// Item. The DM acquires a shared lock on behalf of Txn before answering.
type ReadReq struct {
	Txn     TxnMeta
	Item    Item
	Mode    CheckMode
	Expect  Session // session number the sender believes the target has
	Copier  bool    // read on behalf of a copier refresh
	ReadOld bool    // quorum baseline: read even an unreadable copy
	// NoRecord suppresses history recording for this physical read. The
	// quorum baseline probes several copies but logically reads only the
	// newest; it records that one read itself.
	NoRecord bool
}

// ReadResp carries the committed value of a copy.
type ReadResp struct {
	Value   Value
	Version Version
}

// WriteReq asks a data manager to exclusively lock its copy of Item and
// buffer Value as the pending write of Txn. The value is installed only when
// the transaction commits.
type WriteReq struct {
	Txn    TxnMeta
	Item   Item
	Value  Value
	Mode   CheckMode
	Expect Session
	// MissedBy lists replica sites that did not receive this write because
	// the issuing transaction considered them unavailable; used for
	// fail-lock / missing-list bookkeeping at commit time.
	MissedBy []SiteID
}

// WriteResp acknowledges a buffered write.
type WriteResp struct{}

// BatchOp is one deferred write inside a BatchReq.
type BatchOp struct {
	Item  Item
	Value Value
	// MissedBy lists replica sites this write skipped because the issuing
	// transaction considered them unavailable (per-op, like
	// WriteReq.MissedBy).
	MissedBy []SiteID `json:",omitempty"`
}

// BatchReq carries every operation a transaction's deferred write set holds
// for one participant site in a single wire message: the ROWAA fan-out of
// W×R per-item WriteReqs collapses to one frame per site. The receiving
// data manager executes the batch atomically — one session-gate check, one
// lock-manager pass, one group-commit log append — and, with Prepare set,
// votes in the response, so the flush round doubles as phase one of
// two-phase commit (W×R + 2R messages become R + R).
type BatchReq struct {
	Txn    TxnMeta
	Mode   CheckMode
	Expect Session // session number the sender believes the target has
	Ops    []BatchOp
	// Prepare piggybacks the 2PC prepare on the flush: the site logs the
	// batch as its prepare record and votes in the BatchResp.
	Prepare bool
}

// BatchResp acknowledges an executed batch. With BatchReq.Prepare set, Vote
// and MaxSeq mirror PrepareResp: the participant's yes/no vote and its
// high-water commit sequence number.
type BatchResp struct {
	Vote   bool
	MaxSeq uint64
}

// PrepareReq is phase one of two-phase commit.
type PrepareReq struct {
	Txn TxnMeta
}

// PrepareResp carries the participant's vote. MaxSeq is the largest commit
// sequence number the participant has generated or observed: the coordinator
// folds it into its own sequencer before picking the commit sequence number,
// so version counters stay ordered by commit order even when each site draws
// from an independent strided sequencer (srnode).
type PrepareResp struct {
	Vote   bool
	MaxSeq uint64
}

// CommitReq is phase two of two-phase commit: install pending writes with
// the coordinator-assigned commit sequence number, then release locks.
type CommitReq struct {
	Txn       TxnMeta
	CommitSeq uint64
}

// CommitResp acknowledges a commit.
type CommitResp struct{}

// AbortReq discards pending writes and releases locks. With ReadOnlyEnd
// set it is the release message for a committed read-only transaction: no
// abort record is logged.
type AbortReq struct {
	Txn         TxnMeta
	ReadOnlyEnd bool
}

// AbortResp acknowledges an abort.
type AbortResp struct{}

// DecisionReq asks a site for the outcome of a transaction (cooperative
// termination). Sites answer from their commit/abort logs even while
// recovering.
type DecisionReq struct {
	Txn TxnID
}

// DecisionResp reports the asked site's knowledge of the outcome.
type DecisionResp struct {
	State     TxnState
	CommitSeq uint64
}

// ProbeReq asks whether the target is alive, and in which state. The
// failure detector and the naive-available baseline use it.
type ProbeReq struct{}

// ProbeResp reports liveness.
type ProbeResp struct {
	Operational bool
	Session     Session
}

// MissedFetchReq asks an operational site for the set of items the asking
// (recovering) site missed updates on, according to the target's fail-locks
// or missing list. The target atomically clears its entries for the asking
// site. It also returns the entries it holds about other still-down sites so
// the recovering site can rebuild its own missing list (§5).
type MissedFetchReq struct {
	For SiteID
}

// MissedFetchResp carries the missed-update bookkeeping.
type MissedFetchResp struct {
	// Items the asking site missed updates on.
	Missed []Item
	// Entries about other sites: Others[j] lists items site j has missed,
	// as known by the answering site. Only populated by the missing-list
	// strategy.
	Others map[SiteID][]Item
}

// SpoolAppendReq stores an update destined for a down site at a spooler
// (the Hammer & Shipman baseline).
type SpoolAppendReq struct {
	For       SiteID
	Item      Item
	Value     Value
	CommitSeq uint64
	Writer    TxnID
}

// SpoolAppendResp acknowledges a spooled update.
type SpoolAppendResp struct{}

// SpoolFetchReq drains the spooled updates held for the asking site.
type SpoolFetchReq struct {
	For SiteID
}

// SpoolFetchResp returns spooled updates in commit order.
type SpoolFetchResp struct {
	Updates []SpooledUpdate
}

// SpooledUpdate is one missed write held by a spooler.
type SpooledUpdate struct {
	Item      Item
	Value     Value
	CommitSeq uint64
	Writer    TxnID
}

// Kind implementations.

// Kind implements Message.
func (ReadReq) Kind() string { return "read" }

// Kind implements Message.
func (ReadResp) Kind() string { return "read.resp" }

// Kind implements Message.
func (WriteReq) Kind() string { return "write" }

// Kind implements Message.
func (WriteResp) Kind() string { return "write.resp" }

// Kind implements Message.
func (BatchReq) Kind() string { return "batch" }

// Kind implements Message.
func (BatchResp) Kind() string { return "batch.resp" }

// Kind implements Message.
func (PrepareReq) Kind() string { return "prepare" }

// Kind implements Message.
func (PrepareResp) Kind() string { return "prepare.resp" }

// Kind implements Message.
func (CommitReq) Kind() string { return "commit" }

// Kind implements Message.
func (CommitResp) Kind() string { return "commit.resp" }

// Kind implements Message.
func (AbortReq) Kind() string { return "abort" }

// Kind implements Message.
func (AbortResp) Kind() string { return "abort.resp" }

// Kind implements Message.
func (DecisionReq) Kind() string { return "decision" }

// Kind implements Message.
func (DecisionResp) Kind() string { return "decision.resp" }

// Kind implements Message.
func (ProbeReq) Kind() string { return "probe" }

// Kind implements Message.
func (ProbeResp) Kind() string { return "probe.resp" }

// Kind implements Message.
func (MissedFetchReq) Kind() string { return "missed.fetch" }

// Kind implements Message.
func (MissedFetchResp) Kind() string { return "missed.fetch.resp" }

// Kind implements Message.
func (SpoolAppendReq) Kind() string { return "spool.append" }

// Kind implements Message.
func (SpoolAppendResp) Kind() string { return "spool.append.resp" }

// Kind implements Message.
func (SpoolFetchReq) Kind() string { return "spool.fetch" }

// Kind implements Message.
func (SpoolFetchResp) Kind() string { return "spool.fetch.resp" }
