// Package proto defines the vocabulary shared by all sites of the simulated
// replicated distributed database: identifiers, transaction metadata, the
// messages exchanged over the network simulator, and the protocol error
// taxonomy.
//
// The network is in-process (see internal/netsim), so messages are plain Go
// values rather than serialized bytes; the set of types below is the wire
// contract all the same, and nothing outside this package crosses between
// sites.
package proto

import (
	"fmt"
	"strconv"
	"strings"
)

// SiteID names a site. Sites are numbered 1..n; 0 is "no site".
type SiteID int

// String implements fmt.Stringer.
func (s SiteID) String() string { return "site" + strconv.Itoa(int(s)) }

// TxnID is a cluster-unique transaction identifier drawn from a global
// sequencer. IDs are monotonically increasing, so they double as the
// timestamps used by wound-wait deadlock avoidance and as commit-order
// tiebreakers. (The sequencer stands in for synchronized or Lamport clocks;
// only uniqueness and monotonicity are relied upon.)
type TxnID uint64

// String implements fmt.Stringer.
func (t TxnID) String() string { return "t" + strconv.FormatUint(uint64(t), 10) }

// Item names a logical data item. Physical copies are identified by an
// (Item, SiteID) pair.
type Item string

// Value is the content of a data item. Using an integer keeps examples able
// to check semantic invariants (conservation of money and the like) on top
// of serializability certification.
type Value int64

// Session is a session number. Zero means "not operational": the paper
// reserves 0 for sites that are down or recovering.
type Session uint64

// NoSession is the session number of a site that is not operational.
const NoSession Session = 0

// nsPrefix prefixes the names of the nominal-session-number data items that
// augment the database (NS[k] in the paper).
const nsPrefix = "ns:"

// NSItem returns the logical data item holding the nominal session number of
// site k. NS items are fully replicated at all sites.
func NSItem(k SiteID) Item { return Item(nsPrefix + strconv.Itoa(int(k))) }

// IsNSItem reports whether item is a nominal session number, and for which
// site.
func IsNSItem(item Item) (SiteID, bool) {
	rest, ok := strings.CutPrefix(string(item), nsPrefix)
	if !ok {
		return 0, false
	}
	k, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return SiteID(k), true
}

// TxnClass distinguishes the kinds of transactions the paper's theory treats
// differently.
type TxnClass int

// Transaction classes. Initial and Final are the synthetic transactions that
// augment histories for the serializability theory of §4.
const (
	ClassUser TxnClass = iota + 1
	ClassCopier
	ClassControl1 // type-1 control transaction: claims a site nominally up
	ClassControl2 // type-2 control transaction: claims sites nominally down
	ClassInitial
	ClassFinal
)

// String implements fmt.Stringer.
func (c TxnClass) String() string {
	switch c {
	case ClassUser:
		return "user"
	case ClassCopier:
		return "copier"
	case ClassControl1:
		return "control1"
	case ClassControl2:
		return "control2"
	case ClassInitial:
		return "initial"
	case ClassFinal:
		return "final"
	default:
		return "class(" + strconv.Itoa(int(c)) + ")"
	}
}

// ParseTxnClass maps a TxnClass's String() form back to the class.
func ParseTxnClass(s string) (TxnClass, bool) {
	for c := ClassUser; c <= ClassFinal; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// IsControl reports whether the class is a control transaction.
func (c TxnClass) IsControl() bool { return c == ClassControl1 || c == ClassControl2 }

// TxnMeta travels with every physical operation so data managers can lock,
// log, and record history on behalf of the issuing transaction.
type TxnMeta struct {
	ID     TxnID
	Class  TxnClass
	Origin SiteID // site whose TM coordinates the transaction
}

// CheckMode selects how a data manager validates an incoming physical
// operation.
type CheckMode int

// Check modes.
const (
	// CheckSession is the paper's user-transaction convention: the request
	// carries the session number the transaction believes the target has,
	// and the DM rejects the request unless it equals the actual session
	// number.
	CheckSession CheckMode = iota + 1
	// CheckNone skips the session check. Control transactions use it (they
	// must run at recovering sites whose session number is still 0), and so
	// do the non-paper baselines (naive-available, quorum) that have no
	// session machinery.
	CheckNone
)

// Version identifies a committed state of a physical copy. Versions are
// totally ordered by (Counter, Writer); the counter is the coordinator-
// assigned commit sequence number.
type Version struct {
	Counter uint64
	Writer  TxnID
}

// Less reports whether v precedes w in version order.
func (v Version) Less(w Version) bool {
	if v.Counter != w.Counter {
		return v.Counter < w.Counter
	}
	return v.Writer < w.Writer
}

// String implements fmt.Stringer.
func (v Version) String() string {
	return fmt.Sprintf("v%d/%s", v.Counter, v.Writer)
}

// TxnState is a two-phase-commit outcome as known by a site.
type TxnState int

// Transaction states reported by decision queries.
const (
	StateUnknown TxnState = iota + 1
	StatePrepared
	StateCommitted
	StateAborted
)

// String implements fmt.Stringer.
func (s TxnState) String() string {
	switch s {
	case StateUnknown:
		return "unknown"
	case StatePrepared:
		return "prepared"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return "state(" + strconv.Itoa(int(s)) + ")"
	}
}
