package proto

import (
	"errors"
	"fmt"
)

// Protocol error taxonomy. These sentinels cross the (in-process) network
// and drive transaction-manager retry decisions, so they are matched with
// errors.Is throughout.
var (
	// ErrSiteDown is the transport-level outcome of calling a crashed site.
	ErrSiteDown = errors.New("site is down")

	// ErrDropped is returned when the network simulator drops a message
	// (only with a nonzero configured loss rate).
	ErrDropped = errors.New("message dropped")

	// ErrSessionMismatch is the data manager's rejection of a request whose
	// carried session number differs from the site's actual session number.
	// It means the sender's view of the system configuration is stale.
	ErrSessionMismatch = errors.New("session number mismatch")

	// ErrNotOperational rejects user operations at a site that is down for
	// DDBS purposes or still recovering (actual session number 0).
	ErrNotOperational = errors.New("site not operational")

	// ErrUnreadable reports a read of a copy that is marked unreadable
	// because it may have missed updates. Depending on policy the reader
	// either triggers a copier or reads another copy.
	ErrUnreadable = errors.New("copy marked unreadable")

	// ErrLockTimeout reports that a lock request waited longer than the
	// deadlock-resolution timeout.
	ErrLockTimeout = errors.New("lock wait timed out")

	// ErrWounded reports that a wound-wait lock manager killed the
	// transaction in favour of an older one.
	ErrWounded = errors.New("transaction wounded by older transaction")

	// ErrTxnAborted reports an operation on behalf of a transaction the
	// participant has already aborted.
	ErrTxnAborted = errors.New("transaction already aborted")

	// ErrUnknownTxn reports a prepare/commit/abort for a transaction the
	// participant does not know (for example because it crashed and lost
	// its volatile state).
	ErrUnknownTxn = errors.New("unknown transaction")

	// ErrUnavailable reports a logical operation that no interpretation
	// could satisfy: no readable copy at any nominally-up site, or a write
	// with zero nominally-up replicas.
	ErrUnavailable = errors.New("no available copy")

	// ErrNoQuorum reports that the quorum baseline could not assemble a
	// read or write quorum.
	ErrNoQuorum = errors.New("quorum not reachable")

	// ErrTotalFailure reports that every replica of an item is lost to
	// failed sites; the paper defers this case to a separate protocol.
	ErrTotalFailure = errors.New("all copies at failed sites (totally failed item)")

	// ErrAbortRequested is used by user transaction bodies to abort
	// voluntarily; the retry wrapper does not retry it.
	ErrAbortRequested = errors.New("abort requested")

	// ErrTxnFinished rejects an operation on a Tx whose Commit or Abort has
	// already run. It marks a caller bug, not a protocol outcome, and is
	// therefore not retryable.
	ErrTxnFinished = errors.New("transaction already finished")

	// ErrNoReplica reports a write whose replica set has zero nominally-up
	// sites. It wraps ErrUnavailable, so existing errors.Is checks, the
	// retry classification, and the abort-reason taxonomy are unchanged;
	// callers can now also match the specific condition.
	ErrNoReplica = fmt.Errorf("no nominally-up replica: %w", ErrUnavailable)

	// ErrUnknownPolicy rejects a logical operation under a replication
	// profile with an unrecognized read or write policy (a configuration
	// bug; not retryable).
	ErrUnknownPolicy = errors.New("unknown replication policy")
)

// Retryable reports whether an error is a transient protocol outcome that a
// transaction manager should handle by aborting and re-running the
// transaction with a fresh view (stale session view, deadlock victim,
// crashed participant, ...).
func Retryable(err error) bool {
	switch {
	case errors.Is(err, ErrSessionMismatch),
		errors.Is(err, ErrSiteDown),
		errors.Is(err, ErrDropped),
		errors.Is(err, ErrLockTimeout),
		errors.Is(err, ErrWounded),
		errors.Is(err, ErrNotOperational),
		errors.Is(err, ErrTxnAborted),
		errors.Is(err, ErrNoQuorum),
		errors.Is(err, ErrUnreadable),
		errors.Is(err, ErrUnavailable):
		return true
	default:
		return false
	}
}
