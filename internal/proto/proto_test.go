package proto

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestNSItemRoundTrip(t *testing.T) {
	for _, k := range []SiteID{1, 2, 7, 42, 1000} {
		item := NSItem(k)
		got, ok := IsNSItem(item)
		if !ok || got != k {
			t.Errorf("IsNSItem(NSItem(%d)) = (%d, %v), want (%d, true)", k, got, ok, k)
		}
	}
}

func TestNSItemRoundTripProperty(t *testing.T) {
	f := func(k uint16) bool {
		site := SiteID(k)
		got, ok := IsNSItem(NSItem(site))
		return ok && got == site
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsNSItemRejectsOrdinaryItems(t *testing.T) {
	tests := []Item{"x", "account:7", "", "ns", "ns:", "ns:abc", "NS:3"}
	for _, item := range tests {
		if _, ok := IsNSItem(item); ok {
			t.Errorf("IsNSItem(%q) = true, want false", item)
		}
	}
}

func TestVersionLess(t *testing.T) {
	tests := []struct {
		v, w Version
		want bool
	}{
		{Version{Counter: 1, Writer: 5}, Version{Counter: 2, Writer: 1}, true},
		{Version{Counter: 2, Writer: 1}, Version{Counter: 1, Writer: 5}, false},
		{Version{Counter: 3, Writer: 1}, Version{Counter: 3, Writer: 2}, true},
		{Version{Counter: 3, Writer: 2}, Version{Counter: 3, Writer: 2}, false},
	}
	for _, tt := range tests {
		if got := tt.v.Less(tt.w); got != tt.want {
			t.Errorf("(%v).Less(%v) = %v, want %v", tt.v, tt.w, got, tt.want)
		}
	}
}

func TestVersionOrderIsTotalOnDistinct(t *testing.T) {
	f := func(c1, c2 uint32, w1, w2 uint16) bool {
		v := Version{Counter: uint64(c1), Writer: TxnID(w1)}
		w := Version{Counter: uint64(c2), Writer: TxnID(w2)}
		if v == w {
			return !v.Less(w) && !w.Less(v)
		}
		// exactly one direction holds
		return v.Less(w) != w.Less(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTxnClassString(t *testing.T) {
	tests := []struct {
		class TxnClass
		want  string
	}{
		{ClassUser, "user"},
		{ClassCopier, "copier"},
		{ClassControl1, "control1"},
		{ClassControl2, "control2"},
		{ClassInitial, "initial"},
		{ClassFinal, "final"},
		{TxnClass(99), "class(99)"},
	}
	for _, tt := range tests {
		if got := tt.class.String(); got != tt.want {
			t.Errorf("TxnClass(%d).String() = %q, want %q", tt.class, got, tt.want)
		}
	}
}

func TestIsControl(t *testing.T) {
	if !ClassControl1.IsControl() || !ClassControl2.IsControl() {
		t.Error("control classes must report IsControl")
	}
	for _, c := range []TxnClass{ClassUser, ClassCopier, ClassInitial, ClassFinal} {
		if c.IsControl() {
			t.Errorf("%v.IsControl() = true, want false", c)
		}
	}
}

func TestRetryable(t *testing.T) {
	retryable := []error{
		ErrSiteDown, ErrDropped, ErrSessionMismatch, ErrLockTimeout,
		ErrWounded, ErrNotOperational, ErrTxnAborted, ErrNoQuorum,
		ErrUnreadable, ErrUnavailable,
	}
	for _, err := range retryable {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
		wrapped := fmt.Errorf("op read x at site3: %w", err)
		if !Retryable(wrapped) {
			t.Errorf("Retryable(wrapped %v) = false, want true", err)
		}
	}
	for _, err := range []error{ErrTotalFailure, ErrAbortRequested, ErrUnknownTxn, errors.New("other")} {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

func TestStringers(t *testing.T) {
	if got := SiteID(3).String(); got != "site3" {
		t.Errorf("SiteID(3) = %q", got)
	}
	if got := TxnID(17).String(); got != "t17" {
		t.Errorf("TxnID(17) = %q", got)
	}
	if got := (Version{Counter: 4, Writer: 9}).String(); got != "v4/t9" {
		t.Errorf("Version = %q", got)
	}
	states := map[TxnState]string{
		StateUnknown: "unknown", StatePrepared: "prepared",
		StateCommitted: "committed", StateAborted: "aborted",
		TxnState(42): "state(42)",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("TxnState(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestMessageKindsAreUniqueAndStable(t *testing.T) {
	msgs := []Message{
		ReadReq{}, ReadResp{}, WriteReq{}, WriteResp{},
		PrepareReq{}, PrepareResp{}, CommitReq{}, CommitResp{},
		AbortReq{}, AbortResp{}, DecisionReq{}, DecisionResp{},
		ProbeReq{}, ProbeResp{}, MissedFetchReq{}, MissedFetchResp{},
		SpoolAppendReq{}, SpoolAppendResp{}, SpoolFetchReq{}, SpoolFetchResp{},
	}
	seen := make(map[string]bool, len(msgs))
	for _, m := range msgs {
		k := m.Kind()
		if k == "" {
			t.Errorf("%T has empty kind", m)
		}
		if seen[k] {
			t.Errorf("duplicate message kind %q", k)
		}
		seen[k] = true
	}
}
