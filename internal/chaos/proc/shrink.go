package proc

import (
	"context"
	"fmt"
	"path/filepath"

	"siterecovery/internal/chaos"
)

// Shrink delta-debugs a failing process schedule down to a 1-minimal
// reproducer, reusing the netsim ddmin engine with a runner that replays
// each candidate against a fresh process cluster. Every attempt gets its own
// numbered artifact directory under opts.Dir so the shrink trail is
// inspectable afterwards.
//
// Process runs are slower and less deterministic than simulator runs —
// ddmin only keeps reductions that still reproduce the failure, so timing
// flakiness costs shrink quality (a larger reproducer), never correctness.
func Shrink(ctx context.Context, sched chaos.Schedule, failure chaos.Failure, opts Options, log func(string)) (chaos.Schedule, error) {
	attempt := 0
	run := func(ctx context.Context, s chaos.Schedule) ([]chaos.Failure, error) {
		attempt++
		o := opts
		if o.Dir != "" {
			o.Dir = filepath.Join(o.Dir, fmt.Sprintf("shrink%03d", attempt))
		}
		res, err := Run(ctx, s, o)
		if err != nil {
			return nil, err
		}
		return res.Failures, nil
	}
	return chaos.ShrinkWith(ctx, sched, failure, run, log)
}
