package proc

import (
	"fmt"
	"math/rand"

	"siterecovery/internal/chaos"
	"siterecovery/internal/proto"
	"siterecovery/internal/workload"
)

// GenConfig shapes process-schedule generation.
type GenConfig struct {
	// Seed drives every random choice; the same seed and config always
	// generate the same schedule, byte for byte.
	Seed int64
	// Steps is the plan length. Defaults to 30.
	Steps int
	// Sites and Items size the cluster. Defaults 3 sites, 8 items. The
	// process cluster is always fully replicated (srnode -items semantics),
	// so the schedule's Degree is pinned to Sites.
	Sites int
	Items int
	// Identify names the identification strategy. Defaults to markall.
	Identify string
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Steps == 0 {
		g.Steps = 30
	}
	if g.Sites == 0 {
		g.Sites = 3
	}
	if g.Items == 0 {
		g.Items = 8
	}
	if g.Identify == "" {
		g.Identify = "markall"
	}
	return g
}

// slowLevels are the link delays a StepSlow picks from, in milliseconds;
// 0 ends the slowdown. Kept below the transport call timeout so slowed
// links degrade rather than sever.
var slowLevels = []int64{0, 20, 60, 120}

// Generate draws a process-chaos plan from rand.Rand(seed), in the same
// Schedule vocabulary the netsim generator uses plus the two proc-only
// kinds: kill (SIGKILL, distinct from the polite fail-stop crash) and slow
// (per-site link delay). Generation tracks a model of the cluster so plans
// are mostly well-formed — it never takes the last serving site down and
// only heals or resumes what it broke — while the runner still skips
// ill-formed steps deterministically (shrinking creates them).
func Generate(cfg GenConfig) chaos.Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	items := make([]proto.Item, cfg.Items)
	for i := range items {
		items[i] = workload.ItemName(i)
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Items:        items,
		Seed:         cfg.Seed,
		OpsPerTxn:    3,
		ReadFraction: 0.4,
		Dist:         workload.Uniform,
	})
	if err != nil {
		panic(fmt.Sprintf("proc generator: %v", err)) // only fires on empty Items
	}

	up := make(map[proto.SiteID]bool, cfg.Sites)
	var sites []proto.SiteID
	for i := 1; i <= cfg.Sites; i++ {
		id := proto.SiteID(i)
		sites = append(sites, id)
		up[id] = true
	}
	slowed := make(map[proto.SiteID]bool)
	stalled := make(map[proto.SiteID]bool)
	partitioned := false

	upSites := func() []proto.SiteID {
		var out []proto.SiteID
		for _, s := range sites {
			if up[s] {
				out = append(out, s)
			}
		}
		return out
	}
	downSites := func() []proto.SiteID {
		var out []proto.SiteID
		for _, s := range sites {
			if !up[s] {
				out = append(out, s)
			}
		}
		return out
	}

	sched := chaos.Schedule{
		Version:  chaos.ScheduleVersion,
		Seed:     cfg.Seed,
		Sites:    cfg.Sites,
		Items:    cfg.Items,
		Degree:   cfg.Sites,
		Identify: cfg.Identify,
	}
	for len(sched.Steps) < cfg.Steps {
		switch roll := rng.Float64(); {
		case roll < 0.08: // polite crash (POST /crash)
			ups := upSites()
			if len(ups) < 2 {
				continue
			}
			victim := ups[rng.Intn(len(ups))]
			up[victim] = false
			sched.Steps = append(sched.Steps, chaos.Step{Kind: chaos.StepCrash, Site: victim})
		case roll < 0.16: // SIGKILL
			ups := upSites()
			if len(ups) < 2 {
				continue
			}
			victim := ups[rng.Intn(len(ups))]
			up[victim] = false
			sched.Steps = append(sched.Steps, chaos.Step{Kind: chaos.StepKill, Site: victim})
		case roll < 0.32: // recover (favored so runs end mostly up)
			downs := downSites()
			if len(downs) == 0 {
				continue
			}
			site := downs[rng.Intn(len(downs))]
			up[site] = true
			sched.Steps = append(sched.Steps, chaos.Step{Kind: chaos.StepRecover, Site: site})
		case roll < 0.38: // partition into two random nonempty groups
			if partitioned || len(sites) < 2 {
				continue
			}
			cut := 1 + rng.Intn(len(sites)-1)
			perm := rng.Perm(len(sites))
			groups := [][]proto.SiteID{{}, {}}
			for i, p := range perm {
				g := 0
				if i >= cut {
					g = 1
				}
				groups[g] = append(groups[g], sites[p])
			}
			partitioned = true
			sched.Steps = append(sched.Steps, chaos.Step{Kind: chaos.StepPartition, Groups: groups})
		case roll < 0.44: // heal
			if !partitioned {
				continue
			}
			partitioned = false
			sched.Steps = append(sched.Steps, chaos.Step{Kind: chaos.StepHeal})
		case roll < 0.52: // slow a site's links (or restore them)
			site := sites[rng.Intn(len(sites))]
			level := slowLevels[rng.Intn(len(slowLevels))]
			if (level > 0) == slowed[site] {
				continue // no-op transition
			}
			slowed[site] = level > 0
			sched.Steps = append(sched.Steps, chaos.Step{Kind: chaos.StepSlow, Site: site, DelayMS: level})
		case roll < 0.56: // wedge a site's links mid-stream
			site := sites[rng.Intn(len(sites))]
			if stalled[site] {
				continue
			}
			stalled[site] = true
			sched.Steps = append(sched.Steps, chaos.Step{Kind: chaos.StepStall, Site: site})
		case roll < 0.60: // release a wedge
			var wedged []proto.SiteID
			for _, s := range sites {
				if stalled[s] {
					wedged = append(wedged, s)
				}
			}
			if len(wedged) == 0 {
				continue
			}
			site := wedged[rng.Intn(len(wedged))]
			stalled[site] = false
			sched.Steps = append(sched.Steps, chaos.Step{Kind: chaos.StepResume, Site: site})
		default: // concurrent user transaction at a random up site
			ups := upSites()
			if len(ups) == 0 {
				continue
			}
			spec := gen.Next()
			step := chaos.Step{
				Kind:   chaos.StepTxn,
				Site:   ups[rng.Intn(len(ups))],
				Reads:  spec.Reads,
				Writes: spec.Writes,
			}
			for range spec.Writes {
				step.Values = append(step.Values, gen.Value())
			}
			sched.Steps = append(sched.Steps, step)
		}
	}
	return sched
}
