package proc_test

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"siterecovery/internal/chaos"
	"siterecovery/internal/chaos/proc"
	"siterecovery/internal/obs"
	"siterecovery/internal/proto"
)

// TestProcScheduleDeterminism pins the reproducibility contract srchaos
// advertises: the same seed and sizing always generate the same schedule,
// byte for byte, so a CI failure replays from its logged seed alone. This
// test spawns no processes and always runs.
func TestProcScheduleDeterminism(t *testing.T) {
	cfg := proc.GenConfig{Seed: 42, Steps: 30, Sites: 3, Items: 8}
	a, b := proc.Generate(cfg), proc.Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different schedules")
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same seed generated different schedule JSON")
	}
	if c := proc.Generate(proc.GenConfig{Seed: 43, Steps: 30, Sites: 3, Items: 8}); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical schedules")
	}

	// The process cluster is fully replicated; the header must say so.
	if a.Degree != a.Sites {
		t.Fatalf("Degree = %d, want Sites = %d", a.Degree, a.Sites)
	}

	// The proc vocabulary actually appears: across a handful of seeds the
	// generator emits both proc-only kinds (seeded, so this cannot flake).
	kinds := map[chaos.StepKind]bool{}
	for seed := int64(1); seed <= 10; seed++ {
		for _, s := range proc.Generate(proc.GenConfig{Seed: seed, Steps: 40}).Steps {
			kinds[s.Kind] = true
		}
	}
	for _, want := range []chaos.StepKind{chaos.StepKill, chaos.StepSlow, chaos.StepCrash, chaos.StepTxn} {
		if !kinds[want] {
			t.Errorf("no %q step generated across seeds 1..10", want)
		}
	}

	// Schedules survive the JSON round-trip shrink reproducers rely on.
	var back chaos.Schedule
	if err := json.Unmarshal(aj, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatal("schedule did not survive JSON round-trip")
	}
}

// TestProcSigkillMidCommit runs the scripted scenario the /crash model
// cannot express: SIGKILL the coordinator while its 2PC is in flight
// through a slowed link, respawn it over its statedir, and require the full
// trace-invariant suite plus convergence after quiesce. The kill-cut marker
// machinery is what makes the truncated incarnation-0 export acceptable.
func TestProcSigkillMidCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning chaos scenario in -short mode")
	}
	sched := scenarioSchedule([]chaos.Step{
		{Kind: chaos.StepSlow, Site: 2, DelayMS: 120},
		{Kind: chaos.StepTxn, Site: 1, Writes: w("item-0000", "item-0001"), Values: v(11, 12)},
		{Kind: chaos.StepKill, Site: 1},
		{Kind: chaos.StepSlow, Site: 2, DelayMS: 0},
		{Kind: chaos.StepTxn, Site: 2, Writes: w("item-0002"), Values: v(13)},
		{Kind: chaos.StepRecover, Site: 1},
		{Kind: chaos.StepTxn, Site: 3, Writes: w("item-0003"), Values: v(14)},
	})
	res := runScenario(t, sched, nil)
	if res.Info.Crashes == 0 {
		t.Error("scenario never killed a site")
	}
	sawKillCut := false
	for _, e := range res.Merged.Events {
		if e.Type == obs.EvSiteCrash && e.Detail == obs.DetailSigkill {
			sawKillCut = true
		}
	}
	if !sawKillCut {
		t.Error("merged trace has no kill-cut marker despite a SIGKILL")
	}
}

// TestProcPartitionDuringClaim crashes a site, partitions the cluster so
// the recovering site can reach only part of it, and runs the type-1 claim
// inside the partition. The claim must first get the unreachable side
// type-2 excluded; quiesce then repairs that exclusion (crash + re-recover,
// as §3.3 demands) and the whole history must satisfy the trace suite.
func TestProcPartitionDuringClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning chaos scenario in -short mode")
	}
	sched := scenarioSchedule([]chaos.Step{
		{Kind: chaos.StepTxn, Site: 1, Writes: w("item-0000"), Values: v(21)},
		{Kind: chaos.StepCrash, Site: 3},
		{Kind: chaos.StepPartition, Groups: [][]proto.SiteID{{1, 3}, {2}}},
		{Kind: chaos.StepRecover, Site: 3},
		{Kind: chaos.StepHeal},
		{Kind: chaos.StepTxn, Site: 3, Writes: w("item-0001"), Values: v(22)},
	})
	res := runScenario(t, sched, nil)
	if res.Info.Recoveries == 0 {
		t.Error("scenario never recovered a site")
	}
}

// TestProcInjectedBugCaughtAndShrinks is the oracle's proof of work: run a
// noisy schedule against srnode with SRNODE_BUG=reuse-session (recovery
// claims reuse the current session number instead of advancing it — a
// direct violation of the §3.1 uniqueness rule), require the trace suite to
// catch it, and require ddmin to shrink the schedule to at most half its
// length. Gated behind SRCHAOS_E2E=1: it replays the cluster once per
// shrink attempt.
func TestProcInjectedBugCaughtAndShrinks(t *testing.T) {
	if os.Getenv("SRCHAOS_E2E") != "1" {
		t.Skip("set SRCHAOS_E2E=1 to run the injected-bug shrink test")
	}
	if testing.Short() {
		t.Skip("skipping process-spawning chaos scenario in -short mode")
	}
	sched := scenarioSchedule([]chaos.Step{
		{Kind: chaos.StepTxn, Site: 1, Writes: w("item-0000"), Values: v(5)},
		{Kind: chaos.StepSlow, Site: 3, DelayMS: 20},
		{Kind: chaos.StepCrash, Site: 2},
		{Kind: chaos.StepTxn, Site: 1, Writes: w("item-0002"), Values: v(9)},
		{Kind: chaos.StepRecover, Site: 2},
		{Kind: chaos.StepStall, Site: 3},
		{Kind: chaos.StepResume, Site: 3},
		{Kind: chaos.StepCrash, Site: 2},
		{Kind: chaos.StepSlow, Site: 3, DelayMS: 0},
		{Kind: chaos.StepTxn, Site: 3, Reads: w("item-0001")},
		{Kind: chaos.StepRecover, Site: 2},
		{Kind: chaos.StepTxn, Site: 1, Writes: w("item-0003"), Values: v(7)},
	})
	env := []string{"SRNODE_BUG=reuse-session"}

	opts := scenarioOptions(t, env)
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()
	res, err := proc.Run(ctx, sched, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var bug *chaos.Failure
	for i := range res.Failures {
		if res.Failures[i].Invariant == "trace-session-monotone" {
			bug = &res.Failures[i]
		}
	}
	if bug == nil {
		t.Fatalf("injected reuse-session bug not caught; failures: %v", res.Failures)
	}

	minimal, err := proc.Shrink(ctx, sched, *bug, opts, func(msg string) { t.Log(msg) })
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if len(minimal.Steps) > len(sched.Steps)/2 {
		t.Fatalf("shrunk to %d steps, want <= %d", len(minimal.Steps), len(sched.Steps)/2)
	}
	t.Logf("shrunk %d -> %d steps", len(sched.Steps), len(minimal.Steps))
}

// scenarioSchedule wraps steps in the standard 3-site fully replicated
// header the scenario tests share.
func scenarioSchedule(steps []chaos.Step) chaos.Schedule {
	return chaos.Schedule{
		Version:  chaos.ScheduleVersion,
		Seed:     1,
		Sites:    3,
		Items:    4,
		Degree:   3,
		Identify: "markall",
		Steps:    steps,
	}
}

func scenarioOptions(t *testing.T, env []string) proc.Options {
	t.Helper()
	opts := proc.Options{Bin: buildSrnode(t), Dir: t.TempDir(), Env: env}
	if testing.Verbose() {
		opts.Log = func(msg string) { t.Log(msg) }
	}
	return opts
}

// runScenario replays sched against a fresh cluster and fails the test on
// any invariant violation.
func runScenario(t *testing.T, sched chaos.Schedule, env []string) *proc.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	res, err := proc.Run(ctx, sched, scenarioOptions(t, env))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range res.Failures {
		t.Errorf("violation: %v", f)
	}
	if res.Info.StepsRun == 0 {
		t.Error("no steps ran")
	}
	return res
}

func buildSrnode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "srnode")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "siterecovery/cmd/srnode")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build srnode: %v\n%s", err, out)
	}
	return bin
}

func w(items ...string) []proto.Item {
	out := make([]proto.Item, len(items))
	for i, s := range items {
		out[i] = proto.Item(s)
	}
	return out
}

func v(values ...int64) []proto.Value {
	out := make([]proto.Value, len(values))
	for i, n := range values {
		out[i] = proto.Value(n)
	}
	return out
}
