// Package proc runs chaos schedules against a REAL srnode cluster: N OS
// processes speaking the tcpnet wire protocol, every inter-site link routed
// through an internal/faultproxy TCP proxy so the harness can partition,
// slow, and wedge the actual byte streams, and a driver that replays seeded
// chaos.Schedule plans including two crash models the in-process simulator
// cannot express:
//
//   - StepCrash: POST /crash — the process stays alive, its in-memory
//     "stable" state intact, and refuses service (the netsim crash model).
//   - StepKill: SIGKILL — the process dies mid-whatever it was doing. Only
//     state the node spilled to its -statedir (the §3.1 session counter,
//     the 2PC log) survives into the respawned incarnation; everything
//     else, including buffered trace exports, is genuinely lost.
//
// After a schedule runs, the harness quiesces: faults clear, killed
// processes respawn (-start-down, over the same statedir and listen
// address), every down site runs the paper's recovery, type-2 exclusions
// are repaired the way the simulator's quiesce repairs them, and all
// replicas must converge. Per-incarnation JSONL exports are concatenated —
// with a kill-cut marker (obs.DetailSigkill) where a SIGKILL truncated a
// stream — causally merged by internal/trace, and gated on the full
// chaos.TraceSuite. Failing schedules shrink with chaos.ShrinkWith to
// minimal JSON reproducers, exactly like netsim schedules.
package proc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"siterecovery/internal/faultproxy"
	"siterecovery/internal/proto"
	"siterecovery/internal/workload"
)

// Options configures a process-cluster chaos run.
type Options struct {
	// Bin is the path to a built srnode binary. Required.
	Bin string
	// Dir receives all artifacts: per-incarnation exports, statedirs,
	// combined per-site streams, the merged timeline. Empty means a fresh
	// temporary directory.
	Dir string
	// Stderr receives the srnode processes' stderr/stdout (nil discards).
	Stderr io.Writer
	// Env appends to the child environment (e.g. "SRNODE_BUG=reuse-session"
	// to run a deliberately broken variant the oracle must catch).
	Env []string
	// Store selects the srnode storage engine ("mem" or "disk"); empty
	// leaves srnode's default (mem). With "disk" every SIGKILL also
	// exercises the heap-file redo pass on relaunch.
	Store string
	// Log receives progress lines (nil is silent).
	Log func(string)
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(fmt.Sprintf(format, args...))
	}
}

// siteProc is one site's current OS process plus its incarnation history.
type siteProc struct {
	cmd *exec.Cmd
	// gen counts incarnations; it doubles as the -epoch so relaunches
	// never re-allocate a previous life's span or transaction IDs.
	gen int
	// exports lists every incarnation's JSONL path, in order. A SIGKILLed
	// incarnation's file may be empty or torn — that is the point.
	exports []string
	alive   bool
}

// cluster is a live srnode process cluster wired through a fault proxy.
type cluster struct {
	opts     Options
	dir      string
	sites    []proto.SiteID
	items    []proto.Item
	identify string
	proxy    *faultproxy.Proxy
	peerAddr map[proto.SiteID]string // each site's real tcpnet listen address
	ctrl     map[proto.SiteID]string // each site's HTTP control address
	procs    map[proto.SiteID]*siteProc
	client   *http.Client
}

// startCluster reserves addresses, builds the full proxy link matrix, and
// spawns one srnode per site, waiting for all to become operational.
func startCluster(ctx context.Context, opts Options, sites, items int, identify string) (*cluster, error) {
	c := &cluster{
		opts:     opts,
		dir:      opts.Dir,
		identify: identify,
		peerAddr: map[proto.SiteID]string{},
		ctrl:     map[proto.SiteID]string{},
		procs:    map[proto.SiteID]*siteProc{},
		client:   &http.Client{},
	}
	if c.identify == "" {
		c.identify = "markall"
	}
	if c.dir == "" {
		dir, err := os.MkdirTemp("", "srchaos-*")
		if err != nil {
			return nil, err
		}
		c.dir = dir
	} else if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil, err
	}
	for i := 1; i <= sites; i++ {
		c.sites = append(c.sites, proto.SiteID(i))
	}
	for i := 0; i < items; i++ {
		c.items = append(c.items, workload.ItemName(i))
	}

	for _, s := range c.sites {
		var err error
		if c.peerAddr[s], err = freeAddr(); err != nil {
			return nil, err
		}
		if c.ctrl[s], err = freeAddr(); err != nil {
			return nil, err
		}
	}

	// One proxy link per directed pair, targeting the destination's real
	// listener. Site i's view of the cluster points every peer at the
	// (i, peer) link, so faults land on exactly the byte stream they name.
	c.proxy = faultproxy.New()
	for _, from := range c.sites {
		for _, to := range c.sites {
			if from == to {
				continue
			}
			if _, err := c.proxy.AddLink(from, to, c.peerAddr[to]); err != nil {
				c.stop()
				return nil, fmt.Errorf("proxy link %v->%v: %w", from, to, err)
			}
		}
	}

	for _, s := range c.sites {
		if err := c.spawn(s, false); err != nil {
			c.stop()
			return nil, err
		}
	}
	for _, s := range c.sites {
		if err := c.waitStatus(ctx, s, true); err != nil {
			c.stop()
			return nil, fmt.Errorf("site %v never became operational: %w", s, err)
		}
	}
	opts.logf("cluster up: %d sites, %d items, artifacts in %s", sites, items, c.dir)
	return c, nil
}

// peersSpecFor renders site's personalized -peers map: itself at its real
// listen address, every peer at the proxied link address.
func (c *cluster) peersSpecFor(site proto.SiteID) string {
	parts := make([]string, 0, len(c.sites))
	for _, j := range c.sites {
		addr := c.peerAddr[j]
		if j != site {
			addr = c.proxy.Addr(site, j)
		}
		parts = append(parts, fmt.Sprintf("%d=%s", j, addr))
	}
	return strings.Join(parts, ",")
}

// spawn launches site's next incarnation. startDown relaunches after a
// SIGKILL: the process assembles crashed and must run recovery before
// serving. The statedir and listen/control addresses are stable across
// incarnations; the export path and span epoch are per-incarnation.
func (c *cluster) spawn(site proto.SiteID, startDown bool) error {
	p := c.procs[site]
	if p == nil {
		p = &siteProc{gen: -1}
		c.procs[site] = p
	}
	p.gen++
	exportPath := filepath.Join(c.dir, fmt.Sprintf("site%d.gen%d.jsonl", site, p.gen))
	args := []string{
		"-site", fmt.Sprint(int(site)),
		"-peers", c.peersSpecFor(site),
		"-items", itemsCSV(c.items),
		"-control", c.ctrl[site],
		"-identify", c.identify,
		"-export", exportPath,
		"-statedir", filepath.Join(c.dir, fmt.Sprintf("state%d", site)),
		"-epoch", fmt.Sprint(p.gen),
	}
	if startDown {
		args = append(args, "-start-down")
	}
	if c.opts.Store != "" {
		args = append(args, "-store", c.opts.Store)
	}
	cmd := exec.Command(c.opts.Bin, args...)
	cmd.Env = append(os.Environ(), c.opts.Env...)
	out := c.opts.Stderr
	if out == nil {
		out = io.Discard
	}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn site %v: %w", site, err)
	}
	p.cmd = cmd
	p.alive = true
	p.exports = append(p.exports, exportPath)
	return nil
}

// kill SIGKILLs site's process and reaps it. The listen address frees on
// process death, ready for the respawn to rebind.
func (c *cluster) kill(site proto.SiteID) {
	p := c.procs[site]
	if p == nil || !p.alive {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.alive = false
}

// stop tears everything down: processes killed, proxy closed.
func (c *cluster) stop() {
	for _, s := range c.sites {
		c.kill(s)
	}
	if c.proxy != nil {
		c.proxy.Close()
	}
}

// post issues a control-plane POST; control traffic bypasses the proxy, so
// it works under any configured network fault.
func (c *cluster) post(ctx context.Context, site proto.SiteID, path string, body string) (int, []byte, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+c.ctrl[site]+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, buf, nil
}

// getJSON issues a control-plane GET and decodes the JSON response into out.
func (c *cluster) getJSON(ctx context.Context, site proto.SiteID, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+c.ctrl[site]+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		buf, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s at site %v: %d %s", path, site, resp.StatusCode, buf)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// status is the /status control response.
type status struct {
	Up          bool `json:"up"`
	Operational bool `json:"operational"`
}

// waitStatus polls /status until the site answers (and, when operational is
// set, reports itself operational).
func (c *cluster) waitStatus(ctx context.Context, site proto.SiteID, operational bool) error {
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		var st status
		callCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
		lastErr = c.getJSON(callCtx, site, "/status", &st)
		cancel()
		if lastErr == nil && (!operational || (st.Up && st.Operational)) {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("timed out: %v", lastErr)
}

func itemsCSV(items []proto.Item) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = string(it)
	}
	return strings.Join(parts, ",")
}

// freeAddr reserves a localhost port by binding and releasing it; the child
// process rebinds it. Standard e2e idiom, racy only against other tests
// grabbing ports in the same instant.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
