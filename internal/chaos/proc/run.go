package proc

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"siterecovery/internal/chaos"
	"siterecovery/internal/faultproxy"
	"siterecovery/internal/load"
	"siterecovery/internal/obs"
	"siterecovery/internal/obs/export"
	"siterecovery/internal/proto"
	"siterecovery/internal/trace"
)

// Result is everything a process-chaos run produced.
type Result struct {
	Schedule chaos.Schedule  `json:"schedule"`
	Info     chaos.Info      `json:"info"`
	Failures []chaos.Failure `json:"failures,omitempty"`
	// Dir holds the artifacts: per-incarnation exports, combined per-site
	// streams, merged.jsonl, statedirs.
	Dir string `json:"dir"`
	// Merged is the causally ordered cluster timeline (not serialized; read
	// merged.jsonl for the on-disk form).
	Merged trace.Merged `json:"-"`
}

// stepPace is the gap between schedule steps. Transactions run
// asynchronously, so faults issued a step or two after a txn step land while
// its 2PC is still in flight — that interleaving is the whole point.
const stepPace = 25 * time.Millisecond

// stallTearAfter is the byte budget a wedged link forwards before freezing:
// small enough to tear a frame mid-stream, large enough to let the length
// prefix escape.
const stallTearAfter = 64

// Run replays a schedule against a fresh srnode process cluster, quiesces,
// and checks the merged trace plus replica convergence. The returned
// Failures are empty for a passing run; an error means the harness itself
// could not run (no binary, spawn failure), not that an invariant failed.
func Run(ctx context.Context, sched chaos.Schedule, opts Options) (*Result, error) {
	if opts.Bin == "" {
		return nil, fmt.Errorf("proc.Run: Options.Bin is required")
	}
	sites, items := sched.Sites, sched.Items
	if sites == 0 {
		sites = 3
	}
	if items == 0 {
		items = 8
	}
	c, err := startCluster(ctx, opts, sites, items, sched.Identify)
	if err != nil {
		return nil, err
	}
	defer c.stop()

	res := &Result{Schedule: sched, Dir: c.dir}
	r := &runner{c: c, opts: opts, info: &res.Info}
	r.crashed = map[proto.SiteID]bool{}
	r.killed = map[proto.SiteID]bool{}
	r.slowed = map[proto.SiteID]bool{}
	r.stalled = map[proto.SiteID]bool{}
	r.txnSem = make(chan struct{}, 8)

	for i, step := range sched.Steps {
		if err := ctx.Err(); err != nil {
			r.txnWG.Wait()
			return nil, err
		}
		if r.runStep(ctx, step) {
			res.Info.StepsRun++
		} else {
			res.Info.StepsSkipped++
			opts.logf("step %d skipped: %v", i, step)
		}
		time.Sleep(stepPace)
	}
	res.Info.TxnCommitted = int(r.committed.Load())
	res.Info.TxnAborted = int(r.aborted.Load())

	if fails, err := r.quiesce(ctx); err != nil {
		return nil, err
	} else {
		res.Failures = append(res.Failures, fails...)
	}

	fails, merged, err := r.collectTrace(ctx)
	if err != nil {
		return nil, err
	}
	res.Failures = append(res.Failures, fails...)
	res.Merged = merged
	return res, nil
}

// runner tracks the cluster model while a schedule replays, mirroring the
// netsim runner's bookkeeping: which sites are crashed vs SIGKILLed, which
// links are slowed or wedged. It reports a step as run or skipped (shrunken
// schedules are routinely ill-formed; skipping must be deterministic).
type runner struct {
	c    *cluster
	opts Options
	info *chaos.Info

	crashed map[proto.SiteID]bool // alive process refusing service
	killed  map[proto.SiteID]bool // process dead, awaiting respawn
	slowed  map[proto.SiteID]bool
	stalled map[proto.SiteID]bool

	txnWG     sync.WaitGroup
	txnSem    chan struct{}
	committed atomic.Int64
	aborted   atomic.Int64
}

func (r *runner) down(s proto.SiteID) bool { return r.crashed[s] || r.killed[s] }

func (r *runner) validSite(s proto.SiteID) bool {
	return s >= 1 && int(s) <= len(r.c.sites)
}

// upCount counts sites that are neither crashed nor killed.
func (r *runner) upCount() int {
	n := 0
	for _, s := range r.c.sites {
		if !r.down(s) {
			n++
		}
	}
	return n
}

func (r *runner) runStep(ctx context.Context, step chaos.Step) bool {
	switch step.Kind {
	case chaos.StepCrash:
		if !r.validSite(step.Site) || r.down(step.Site) || r.upCount() < 2 {
			return false
		}
		cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if _, _, err := r.c.post(cctx, step.Site, "/crash", ""); err != nil {
			return false
		}
		r.crashed[step.Site] = true
		r.info.Crashes++
		return true

	case chaos.StepKill:
		if !r.validSite(step.Site) || r.killed[step.Site] {
			return false
		}
		// A crashed-but-alive site may still be killed (the models differ in
		// what survives), but never the last serving site.
		if !r.crashed[step.Site] && r.upCount() < 2 {
			return false
		}
		r.c.kill(step.Site)
		r.killed[step.Site] = true
		delete(r.crashed, step.Site)
		r.info.Crashes++
		return true

	case chaos.StepRecover:
		if !r.validSite(step.Site) || !r.down(step.Site) {
			return false
		}
		if r.killed[step.Site] {
			if err := r.c.spawn(step.Site, true); err != nil {
				return false
			}
			delete(r.killed, step.Site)
			r.crashed[step.Site] = true
			wctx, cancel := context.WithTimeout(ctx, 20*time.Second)
			err := r.c.waitStatus(wctx, step.Site, false)
			cancel()
			if err != nil {
				return false
			}
		}
		if err := r.recoverSite(ctx, step.Site, 3); err != nil {
			// The site stays down (still crashed); quiesce retries later.
			r.info.FailedRecoveries++
			return true
		}
		delete(r.crashed, step.Site)
		r.info.Recoveries++
		return true

	case chaos.StepPartition:
		if len(step.Groups) == 0 {
			return false
		}
		r.c.proxy.Partition(step.Groups)
		return true

	case chaos.StepHeal:
		r.c.proxy.Heal()
		return true

	case chaos.StepSlow:
		if !r.validSite(step.Site) {
			return false
		}
		delay := time.Duration(step.DelayMS) * time.Millisecond
		if (delay > 0) == r.slowed[step.Site] {
			return false
		}
		r.slowed[step.Site] = delay > 0
		r.c.proxy.Update(func(from, to proto.SiteID, f *faultproxy.Fault) {
			if from == step.Site || to == step.Site {
				f.Delay = delay
			}
		})
		return true

	case chaos.StepStall:
		// The proc runner maps the simulator's copier stall onto the network:
		// every link touching the site wedges mid-stream after a few bytes,
		// leaving torn frames in flight — the hung-write failure mode.
		if !r.validSite(step.Site) || r.stalled[step.Site] {
			return false
		}
		r.stalled[step.Site] = true
		r.c.proxy.Update(func(from, to proto.SiteID, f *faultproxy.Fault) {
			if from == step.Site || to == step.Site {
				f.Stall = true
				f.StallAfter = stallTearAfter
			}
		})
		return true

	case chaos.StepResume:
		if !r.validSite(step.Site) || !r.stalled[step.Site] {
			return false
		}
		delete(r.stalled, step.Site)
		r.c.proxy.Update(func(from, to proto.SiteID, f *faultproxy.Fault) {
			if from == step.Site || to == step.Site {
				f.Stall = false
				f.StallReply = false
				f.StallAfter = 0
			}
		})
		return true

	case chaos.StepTxn:
		if !r.validSite(step.Site) || r.down(step.Site) {
			return false
		}
		req := load.TxnRequest{Reads: step.Reads}
		for i, item := range step.Writes {
			var v proto.Value
			if i < len(step.Values) {
				v = step.Values[i]
			}
			req.Writes = append(req.Writes, load.TxnWrite{Item: item, Value: v})
		}
		body, err := json.Marshal(req)
		if err != nil {
			return false
		}
		site := step.Site
		r.txnWG.Add(1)
		go func() {
			defer r.txnWG.Done()
			r.txnSem <- struct{}{}
			defer func() { <-r.txnSem }()
			tctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			code, _, err := r.c.post(tctx, site, "/txn", string(body))
			if err == nil && code == 200 {
				r.committed.Add(1)
			} else {
				r.aborted.Add(1)
			}
		}()
		return true

	default:
		// Unknown kinds (StepLoss is netsim-only; future vocabulary) skip
		// deterministically, same as the netsim runner.
		return false
	}
}

// recoverSite drives POST /recover with the crash-on-failure fallback: a
// failed recovery can leave the node in a half-claimed limbo, so the harness
// re-crashes it (a no-op for an already-down site) and tries again.
func (r *runner) recoverSite(ctx context.Context, site proto.SiteID, attempts int) error {
	var lastBody []byte
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		code, body, err := r.c.post(rctx, site, "/recover", "")
		cancel()
		if err == nil && code == 200 {
			return nil
		}
		lastBody = body
		cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		r.c.post(cctx, site, "/crash", "")
		cancel()
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("site %v recovery failed after %d attempts: %s", site, attempts, lastBody)
}

// quiesce drains the run to a stable, fully-up cluster and checks replica
// convergence: clear every network fault, wait out in-flight transactions,
// respawn the killed, recover the down, repair type-2 exclusions (an
// excluded-but-running site must crash and re-recover, as in the simulator's
// quiesce), then require every site to agree on every item.
func (r *runner) quiesce(ctx context.Context) ([]chaos.Failure, error) {
	var fails []chaos.Failure
	r.c.proxy.ClearAll()
	r.stalled = map[proto.SiteID]bool{}
	r.slowed = map[proto.SiteID]bool{}
	r.txnWG.Wait()

	for _, s := range r.c.sites {
		if !r.killed[s] {
			continue
		}
		if err := r.c.spawn(s, true); err != nil {
			return nil, fmt.Errorf("quiesce respawn: %w", err)
		}
		delete(r.killed, s)
		r.crashed[s] = true
		wctx, cancel := context.WithTimeout(ctx, 20*time.Second)
		err := r.c.waitStatus(wctx, s, false)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("quiesce respawn site %v: %w", s, err)
		}
	}
	for _, s := range r.c.sites {
		if !r.crashed[s] {
			continue
		}
		if err := r.recoverSite(ctx, s, 5); err != nil {
			fails = append(fails, chaos.Failure{Invariant: "proc-quiesce", Detail: err.Error()})
			continue
		}
		delete(r.crashed, s)
		r.info.Recoveries++
	}

	// Exclusion repair: a site that considers itself up while some
	// operational peer's committed NS entry for it is NoSession has been
	// type-2 excluded without noticing (§3.3 treats unreachable as crashed).
	// Fail-stop it for real and run recovery.
	for round := 0; round < 10; round++ {
		excluded, err := r.excludedSites(ctx)
		if err != nil {
			fails = append(fails, chaos.Failure{Invariant: "proc-quiesce", Detail: err.Error()})
			break
		}
		if len(excluded) == 0 {
			break
		}
		for _, s := range excluded {
			r.opts.logf("quiesce: repairing excluded site %v", s)
			cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			r.c.post(cctx, s, "/crash", "")
			cancel()
			if err := r.recoverSite(ctx, s, 5); err != nil {
				fails = append(fails, chaos.Failure{Invariant: "proc-quiesce", Detail: err.Error()})
				continue
			}
			r.info.ExclusionRepairs++
		}
	}

	fails = append(fails, r.checkConverged(ctx)...)
	return fails, nil
}

// excludedSites reports up sites that some up-and-operational peer's
// committed NS vector lists as NoSession — the process-cluster mirror of the
// netsim quiesce check, read through GET /ns instead of off the stores.
// A site with no operational peer is skipped: repairing it would fail-stop
// the last working site.
func (r *runner) excludedSites(ctx context.Context) ([]proto.SiteID, error) {
	type nsResp struct {
		NS map[string]proto.Session `json:"ns"`
	}
	statuses := map[proto.SiteID]status{}
	vectors := map[proto.SiteID]map[string]proto.Session{}
	for _, s := range r.c.sites {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		var st status
		err := r.c.getJSON(sctx, s, "/status", &st)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("status site %v: %w", s, err)
		}
		statuses[s] = st
		if !st.Up || !st.Operational {
			continue
		}
		sctx, cancel = context.WithTimeout(ctx, 5*time.Second)
		var ns nsResp
		err = r.c.getJSON(sctx, s, "/ns", &ns)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("ns site %v: %w", s, err)
		}
		vectors[s] = ns.NS
	}
	var out []proto.SiteID
	for _, j := range r.c.sites {
		if !statuses[j].Up {
			continue
		}
		hasPeer, excluded := false, false
		for _, p := range r.c.sites {
			if p == j || vectors[p] == nil {
				continue
			}
			hasPeer = true
			if vectors[p][fmt.Sprint(int(j))] == proto.NoSession {
				excluded = true
			}
		}
		if hasPeer && excluded {
			out = append(out, j)
		}
	}
	return out, nil
}

// checkConverged requires every site to serve the same committed value for
// every item, with a retry window for in-flight copier refreshes to land.
func (r *runner) checkConverged(ctx context.Context) []chaos.Failure {
	deadline := time.Now().Add(30 * time.Second)
	var last []chaos.Failure
	for {
		last = nil
		for _, item := range r.c.items {
			values := map[proto.SiteID]proto.Value{}
			for _, s := range r.c.sites {
				rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				var out struct {
					Value proto.Value `json:"value"`
				}
				err := r.c.getJSON(rctx, s, "/read?item="+string(item), &out)
				cancel()
				if err != nil {
					last = append(last, chaos.Failure{
						Invariant: "proc-convergence",
						Detail:    fmt.Sprintf("read %q at site %v: %v", item, s, err),
					})
					continue
				}
				values[s] = out.Value
			}
			var want proto.Value
			first := true
			for _, s := range r.c.sites {
				v, ok := values[s]
				if !ok {
					continue
				}
				if first {
					want, first = v, false
					continue
				}
				if v != want {
					last = append(last, chaos.Failure{
						Invariant: "proc-convergence",
						Detail:    fmt.Sprintf("item %q diverged: %v", item, values),
					})
					break
				}
			}
		}
		if len(last) == 0 || time.Now().After(deadline) || ctx.Err() != nil {
			return last
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// collectTrace flushes every live incarnation's export, concatenates each
// site's per-incarnation streams with kill-cut markers where a SIGKILL
// truncated one, writes the combined site streams and the causally merged
// timeline, and runs the full trace-invariant suite.
func (r *runner) collectTrace(ctx context.Context) ([]chaos.Failure, trace.Merged, error) {
	var fails []chaos.Failure
	for _, s := range r.c.sites {
		if !r.c.procs[s].alive {
			continue
		}
		fctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		code, body, err := r.c.post(fctx, s, "/flush", "")
		cancel()
		if err != nil || code != 200 {
			fails = append(fails, chaos.Failure{
				Invariant: "proc-export",
				Detail:    fmt.Sprintf("flush site %v: code=%d err=%v body=%s", s, code, err, body),
			})
		}
	}

	streams := make([][]obs.Event, 0, len(r.c.sites))
	for _, s := range r.c.sites {
		p := r.c.procs[s]
		var evs []obs.Event
		for g, path := range p.exports {
			if g > 0 {
				// The previous incarnation died by SIGKILL; everything it had
				// not flushed is gone. The marker tells the trace invariants
				// to treat state open at this site as lost, not violated.
				evs = append(evs, obs.Event{Type: obs.EvSiteCrash, Site: s, Detail: obs.DetailSigkill})
			}
			got, err := export.DecodeFile(path)
			if err != nil {
				fails = append(fails, chaos.Failure{
					Invariant: "proc-export",
					Detail:    fmt.Sprintf("decode %s: %v", filepath.Base(path), err),
				})
				continue
			}
			evs = append(evs, got...)
		}
		if err := writeJSONL(filepath.Join(r.c.dir, fmt.Sprintf("site%d.jsonl", s)), evs); err != nil {
			return nil, trace.Merged{}, err
		}
		streams = append(streams, evs)
	}

	merged := trace.Merge(streams...)
	if err := writeJSONL(filepath.Join(r.c.dir, "merged.jsonl"), merged.Events); err != nil {
		return nil, trace.Merged{}, err
	}
	fails = append(fails, chaos.CheckTrace(merged, chaos.TraceSuite())...)
	return fails, merged, nil
}

// writeJSONL writes events one JSON object per line, the same wire form the
// exporters produce, so srtrace and srcheck read harness artifacts directly.
func writeJSONL(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
