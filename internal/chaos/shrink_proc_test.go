package chaos

import (
	"context"
	"testing"

	"siterecovery/internal/proto"
)

// TestShrinkWithFakeProcRunner drives ddmin with an injected deterministic
// runner over a process-vocabulary schedule (kill/restart, slow links,
// stalls): the "violation" fires iff the candidate still contains two
// kill+recover cycles of site 3 in order — the repeated-session shape the
// real harness minimizes to. The 12-step noisy schedule must shrink to
// exactly that 4-step core without ever touching a real process.
func TestShrinkWithFakeProcRunner(t *testing.T) {
	core := []Step{
		{Kind: StepKill, Site: 3},
		{Kind: StepRecover, Site: 3},
		{Kind: StepKill, Site: 3},
		{Kind: StepRecover, Site: 3},
	}
	noisy := []Step{
		{Kind: StepTxn, Site: 1, Writes: []proto.Item{"i0"}, Values: []proto.Value{1}},
		{Kind: StepSlow, Site: 2, DelayMS: 5},
		core[0],
		{Kind: StepStall, Site: 1},
		core[1],
		{Kind: StepTxn, Site: 2, Reads: []proto.Item{"i0"}},
		{Kind: StepResume, Site: 1},
		core[2],
		{Kind: StepPartition, Groups: [][]proto.SiteID{{1, 3}, {2}}},
		{Kind: StepHeal},
		core[3],
		{Kind: StepTxn, Site: 1, Writes: []proto.Item{"i1"}, Values: []proto.Value{2}},
	}
	sched := Schedule{Version: ScheduleVersion, Seed: 42, Sites: 3, Items: 4, Degree: 3, Identify: "markall", Steps: noisy}

	hasCore := func(steps []Step) bool {
		i := 0
		for _, s := range steps {
			if i < len(core) && s.Kind == core[i].Kind && s.Site == core[i].Site {
				i++
			}
		}
		return i == len(core)
	}
	runs := 0
	run := func(_ context.Context, cand Schedule) ([]Failure, error) {
		runs++
		if hasCore(cand.Steps) {
			return []Failure{{Invariant: "trace-session-monotone", Detail: "site3 repeated session"}}, nil
		}
		return nil, nil
	}

	min, err := ShrinkWith(context.Background(), sched, Failure{Invariant: "trace-session-monotone"}, run, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Steps) != len(core) {
		t.Fatalf("shrunk to %d steps, want %d: %v", len(min.Steps), len(core), min.Steps)
	}
	for i, s := range min.Steps {
		if s.Kind != core[i].Kind || s.Site != core[i].Site {
			t.Fatalf("shrunk step %d = %v, want %v", i, s, core[i])
		}
	}
	if len(min.Steps) > len(noisy)/2 {
		t.Fatalf("reproducer has %d steps, more than half the original %d", len(min.Steps), len(noisy))
	}
	// The header survives shrinking so the reproducer is self-contained.
	if min.Seed != sched.Seed || min.Sites != sched.Sites || min.Identify != sched.Identify {
		t.Fatalf("shrunk header = %+v, want the original header", min)
	}
	if runs < 2 {
		t.Fatalf("runner invoked %d times; ddmin should probe multiple candidates", runs)
	}
}

// TestShrinkWithRequiresReproduction: a failure that does not reproduce on
// the full schedule is an error, not an empty reproducer.
func TestShrinkWithRequiresReproduction(t *testing.T) {
	sched := Schedule{Version: ScheduleVersion, Seed: 1, Sites: 3, Items: 2, Degree: 3, Identify: "markall",
		Steps: []Step{{Kind: StepKill, Site: 1}}}
	run := func(context.Context, Schedule) ([]Failure, error) { return nil, nil }
	if _, err := ShrinkWith(context.Background(), sched, Failure{Invariant: "proc-convergence"}, run, nil); err == nil {
		t.Fatal("ShrinkWith succeeded on a non-reproducing failure")
	}
}
