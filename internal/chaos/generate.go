package chaos

import (
	"fmt"
	"math/rand"

	"siterecovery/internal/proto"
	"siterecovery/internal/workload"
)

// GenConfig shapes schedule generation.
type GenConfig struct {
	// Seed drives every random choice. The same seed and config always
	// generate the same schedule.
	Seed int64
	// Steps is the plan length. Defaults to 40.
	Steps int
	// Sites, Items, Degree describe the cluster. Default 4 sites, 12
	// items, 2-way replication.
	Sites  int
	Items  int
	Degree int
	// Identify names the §5 identification strategy ("markall",
	// "versiondiff", "faillock", "missinglist"). Defaults to markall.
	Identify string
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Steps == 0 {
		g.Steps = 40
	}
	if g.Sites == 0 {
		g.Sites = 4
	}
	if g.Items == 0 {
		g.Items = 12
	}
	if g.Degree == 0 {
		g.Degree = 2
	}
	if g.Identify == "" {
		g.Identify = "markall"
	}
	return g
}

// lossLevels are the burst intensities a StepLoss picks from; 0 ends a
// burst. Kept below the retry budget's tolerance so runs terminate.
var lossLevels = []float64{0, 0.05, 0.15, 0.3}

// Generate draws a fault plan from rand.Rand(seed). Generation tracks a
// model of the cluster (which sites are up, what is stalled, whether a
// partition or loss burst is active) so the plan is mostly well-formed:
// it never crashes the last up site, only recovers down sites, and only
// heals or resumes what it broke. The runner still tolerates ill-formed
// steps (shrinking creates them) by skipping them deterministically.
func Generate(cfg GenConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	items := make([]proto.Item, cfg.Items)
	for i := range items {
		items[i] = workload.ItemName(i)
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Items:        items,
		Seed:         cfg.Seed,
		OpsPerTxn:    3,
		ReadFraction: 0.5,
		Dist:         workload.Uniform,
	})
	if err != nil {
		panic(fmt.Sprintf("chaos generator: %v", err)) // only fires on empty Items
	}

	up := make(map[proto.SiteID]bool, cfg.Sites)
	var sites []proto.SiteID
	for i := 1; i <= cfg.Sites; i++ {
		id := proto.SiteID(i)
		sites = append(sites, id)
		up[id] = true
	}
	stalled := make(map[proto.SiteID]bool)
	partitioned, lossy := false, false

	upSites := func() []proto.SiteID {
		var out []proto.SiteID
		for _, s := range sites {
			if up[s] {
				out = append(out, s)
			}
		}
		return out
	}
	downSites := func() []proto.SiteID {
		var out []proto.SiteID
		for _, s := range sites {
			if !up[s] {
				out = append(out, s)
			}
		}
		return out
	}

	sched := Schedule{
		Version:  ScheduleVersion,
		Seed:     cfg.Seed,
		Sites:    cfg.Sites,
		Items:    cfg.Items,
		Degree:   cfg.Degree,
		Identify: cfg.Identify,
	}
	for len(sched.Steps) < cfg.Steps {
		switch roll := rng.Float64(); {
		case roll < 0.12: // crash
			ups := upSites()
			if len(ups) < 2 {
				continue // never take the last site down
			}
			victim := ups[rng.Intn(len(ups))]
			up[victim] = false
			sched.Steps = append(sched.Steps, Step{Kind: StepCrash, Site: victim})
		case roll < 0.26: // recover (slightly favored so runs end mostly up)
			downs := downSites()
			if len(downs) == 0 {
				continue
			}
			site := downs[rng.Intn(len(downs))]
			up[site] = true
			sched.Steps = append(sched.Steps, Step{Kind: StepRecover, Site: site})
		case roll < 0.31: // partition into two random nonempty groups
			if partitioned || len(sites) < 2 {
				continue
			}
			cut := 1 + rng.Intn(len(sites)-1)
			perm := rng.Perm(len(sites))
			groups := [][]proto.SiteID{{}, {}}
			for i, p := range perm {
				g := 0
				if i >= cut {
					g = 1
				}
				groups[g] = append(groups[g], sites[p])
			}
			partitioned = true
			sched.Steps = append(sched.Steps, Step{Kind: StepPartition, Groups: groups})
		case roll < 0.36: // heal
			if !partitioned {
				continue
			}
			partitioned = false
			sched.Steps = append(sched.Steps, Step{Kind: StepHeal})
		case roll < 0.42: // loss burst start/stop
			level := lossLevels[rng.Intn(len(lossLevels))]
			if level == 0 && !lossy {
				continue // no-op transition
			}
			lossy = level > 0
			sched.Steps = append(sched.Steps, Step{Kind: StepLoss, Loss: level})
		case roll < 0.45: // copier stall
			site := sites[rng.Intn(len(sites))]
			if stalled[site] {
				continue
			}
			stalled[site] = true
			sched.Steps = append(sched.Steps, Step{Kind: StepStall, Site: site})
		case roll < 0.48: // copier resume
			var wedged []proto.SiteID
			for _, s := range sites {
				if stalled[s] {
					wedged = append(wedged, s)
				}
			}
			if len(wedged) == 0 {
				continue
			}
			site := wedged[rng.Intn(len(wedged))]
			stalled[site] = false
			sched.Steps = append(sched.Steps, Step{Kind: StepResume, Site: site})
		default: // user transaction at a random up site
			ups := upSites()
			if len(ups) == 0 {
				continue
			}
			spec := gen.Next()
			step := Step{
				Kind:   StepTxn,
				Site:   ups[rng.Intn(len(ups))],
				Reads:  spec.Reads,
				Writes: spec.Writes,
			}
			for range spec.Writes {
				step.Values = append(step.Values, gen.Value())
			}
			sched.Steps = append(sched.Steps, step)
		}
	}
	return sched
}
