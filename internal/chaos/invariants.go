// Package chaos is a seeded fault-schedule engine for the simulated DDBS:
// it generates randomized plans of crashes, recoveries, partitions, heals,
// loss bursts, copier stalls, and user transactions, executes them strictly
// sequentially against a core.Cluster so the resulting observability trace
// is byte-identical for a given schedule, checks a reusable invariant suite
// afterwards, and delta-debugs failing schedules down to minimal
// reproducers.
//
// The package validates the paper's claims the way deterministic-simulation
// shops do: not with hand-picked interleavings but with thousands of seeded
// adversarial ones, each replayable from a small JSON artifact.
package chaos

import (
	"fmt"
	"strings"

	"siterecovery/internal/core"
	"siterecovery/internal/history"
	"siterecovery/internal/proto"
	"siterecovery/internal/wal"
)

// Info summarizes what a chaos run actually did, so invariants (and test
// hooks) can condition on it.
type Info struct {
	StepsRun         int `json:"steps_run"`
	StepsSkipped     int `json:"steps_skipped"`
	Crashes          int `json:"crashes"`
	Recoveries       int `json:"recoveries"`
	FailedRecoveries int `json:"failed_recoveries"`
	ClaimsDown       int `json:"claims_down"`
	FailedClaims     int `json:"failed_claims"`
	TxnCommitted     int `json:"txn_committed"`
	TxnAborted       int `json:"txn_aborted"`
	TotalResolved    int `json:"total_resolved"`
	// ExclusionRepairs counts sites quiesce had to fail-stop and re-recover
	// because a type-2 claim had excluded them while they kept running
	// (§3.3 treats an unreachable site as crashed).
	ExclusionRepairs int `json:"exclusion_repairs"`
}

// Invariant is one named post-run check. Check returns nil when the
// invariant holds and a detailed error when it does not.
type Invariant struct {
	Name  string
	Check func(*core.Cluster, Info) error
}

// Failure is one invariant violation from a run.
type Failure struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// String implements fmt.Stringer.
func (f Failure) String() string { return f.Invariant + ": " + f.Detail }

// Check runs the given invariants against a quiesced cluster and returns
// every violation.
func Check(c *core.Cluster, info Info, invariants []Invariant) []Failure {
	var out []Failure
	for _, inv := range invariants {
		if err := inv.Check(c, info); err != nil {
			out = append(out, Failure{Invariant: inv.Name, Detail: err.Error()})
		}
	}
	return out
}

// DefaultSuite is the full invariant suite a chaos run must satisfy after
// quiescing. Each entry names the paper property it checks.
func DefaultSuite() []Invariant {
	return []Invariant{
		OneSR(),
		ConflictAcyclic(),
		CopiesConverged(),
		AllCurrent(),
		NSAgreement(),
		WALConsistent(),
		NoLeakedLocks(),
	}
}

// OneSR checks the §4.1 revised 1-STG over the user database: the recorded
// history must be one-serializable (Theorems 1-2).
func OneSR() Invariant {
	return Invariant{Name: "one-sr", Check: func(c *core.Cluster, _ Info) error {
		if ok, cycle := c.CertifyOneSR(); !ok {
			return fmt.Errorf("history not one-serializable; 1-STG cycle %v", cycle)
		}
		return nil
	}}
}

// ConflictAcyclic checks that the conflict graph over the whole database
// (user items plus nominal-session copies) is acyclic — the strict-2PL
// premise of Theorem 3.
func ConflictAcyclic() Invariant {
	return Invariant{Name: "conflict-acyclic", Check: func(c *core.Cluster, _ Info) error {
		if g := c.History().ConflictGraph(history.DomainAll); !g.Acyclic() {
			return fmt.Errorf("conflict graph over DB∪NS cyclic: %v", g.Cycle())
		}
		return nil
	}}
}

// CopiesConverged checks that every up-site copy of every item carries the
// same version (§3.2: copiers eventually make all copies current).
func CopiesConverged() Invariant {
	return Invariant{Name: "copies-converged", Check: func(c *core.Cluster, _ Info) error {
		if div := c.CopiesConverged(); len(div) > 0 {
			return fmt.Errorf("divergent items after quiesce: %v", div)
		}
		return nil
	}}
}

// AllCurrent checks that no operational site still holds unreadable copies
// after quiesce — data recovery (§3.4 step 5) actually finished.
func AllCurrent() Invariant {
	return Invariant{Name: "all-current", Check: func(c *core.Cluster, _ Info) error {
		var stale []string
		for _, id := range c.Sites() {
			s := c.Site(id)
			if !s.Up() || !s.Operational() {
				continue
			}
			if items := s.Store.UnreadableItems(); len(items) > 0 {
				stale = append(stale, fmt.Sprintf("site %v: %v", id, items))
			}
		}
		if len(stale) > 0 {
			return fmt.Errorf("unreadable copies after quiesce: %s", strings.Join(stale, "; "))
		}
		return nil
	}}
}

// NSAgreement checks that the nominal-session-vector copies agree across
// all operational sites (§3.3: control transactions install the vector
// atomically, so no two operational sites may disagree after quiesce).
func NSAgreement() Invariant {
	return Invariant{Name: "ns-agreement", Check: func(c *core.Cluster, _ Info) error {
		for _, j := range c.Sites() {
			item := proto.NSItem(j)
			var (
				first     proto.Value
				firstSite proto.SiteID
				seen      bool
			)
			for _, id := range c.Sites() {
				s := c.Site(id)
				if !s.Up() || !s.Operational() {
					continue
				}
				v, _, err := s.Store.Committed(item)
				if err != nil {
					return fmt.Errorf("site %v cannot read %s: %v", id, item, err)
				}
				if !seen {
					first, firstSite, seen = v, id, true
					continue
				}
				if v != first {
					return fmt.Errorf("ns vector disagreement on %s: site %v has %d, site %v has %d",
						item, firstSite, first, id, v)
				}
			}
		}
		return nil
	}}
}

// WALConsistent cross-checks each operational site's stable log and storage
// against the recorded history: no in-doubt 2PC state may survive quiesce,
// every logged commit must belong to a history-committed transaction, and
// every installed version's writer must have committed.
func WALConsistent() Invariant {
	return Invariant{Name: "wal-consistent", Check: func(c *core.Cluster, _ Info) error {
		h := c.History()
		for _, id := range c.Sites() {
			s := c.Site(id)
			if !s.Up() || !s.Operational() {
				continue
			}
			if indoubt := s.Log.InDoubt(); len(indoubt) > 0 {
				return fmt.Errorf("site %v still in doubt about %v after quiesce", id, indoubt)
			}
			for _, rec := range s.Log.Scan() {
				if rec.Type == wal.RecordCommit {
					info, ok := h.Txn(rec.Txn)
					if !ok {
						return fmt.Errorf("site %v logged commit of unknown txn %v", id, rec.Txn)
					}
					if !info.Committed {
						return fmt.Errorf("site %v logged commit of txn %v, which the history has uncommitted", id, rec.Txn)
					}
				}
			}
			for _, copy := range s.Store.Snapshot() {
				if copy.Unreadable {
					continue
				}
				info, ok := h.Txn(copy.Version.Writer)
				if !ok {
					return fmt.Errorf("site %v copy %s installed by unknown txn %v", id, copy.Item, copy.Version.Writer)
				}
				if !info.Committed {
					return fmt.Errorf("site %v copy %s installed by uncommitted txn %v", id, copy.Item, copy.Version.Writer)
				}
			}
		}
		return nil
	}}
}

// NoLeakedLocks checks that strict two-phase locking released everything:
// on a quiesced cluster no lock table may hold a grant (a leak means some
// transaction ended without ReleaseAll).
func NoLeakedLocks() Invariant {
	return Invariant{Name: "no-leaked-locks", Check: func(c *core.Cluster, _ Info) error {
		var leaks []string
		for _, id := range c.Sites() {
			s := c.Site(id)
			if !s.Up() || !s.Operational() {
				continue
			}
			if held := s.Locks.OutstandingLocks(); len(held) > 0 {
				leaks = append(leaks, fmt.Sprintf("site %v: %v", id, held))
			}
		}
		if len(leaks) > 0 {
			return fmt.Errorf("locks leaked after quiesce: %s", strings.Join(leaks, "; "))
		}
		return nil
	}}
}
