package chaos

import (
	"strings"
	"testing"
	"time"

	"siterecovery/internal/obs"
	"siterecovery/internal/proto"
	"siterecovery/internal/trace"
)

func tat(n int) time.Time { return time.Unix(0, int64(n)*int64(time.Millisecond)).UTC() }

// healthyTrace builds a merged trace of one traced RPC (write txn 7 from
// site 1 to site 2) followed by a full crash/recovery cycle at site 2,
// satisfying every invariant in the suite.
func healthyTrace(t *testing.T) trace.Merged {
	t.Helper()
	const sp = 0x1000000000001
	s1 := []obs.Event{
		{Type: obs.EvSpanStart, Site: 1, Peer: 2, Txn: 7, Span: sp, Lamport: 3, Detail: "client:write", At: tat(10)},
		{Type: obs.EvSpanFinish, Site: 1, Peer: 2, Txn: 7, Span: sp, Lamport: 3, Dur: time.Millisecond, Detail: "client:write", At: tat(14)},
		{Type: obs.EvTxnCommit, Site: 1, Txn: 7, Class: proto.ClassUser, At: tat(15)},
	}
	s2 := []obs.Event{
		{Type: obs.EvSpanStart, Site: 2, Peer: 1, Txn: 7, Span: sp, Lamport: 3, Detail: "server:write", At: tat(11)},
		{Type: obs.EvSpanFinish, Site: 2, Peer: 1, Txn: 7, Span: sp, Lamport: 3, Detail: "server:write", At: tat(12)},
		{Type: obs.EvSiteCrash, Site: 2, At: tat(20)},
		{Type: obs.EvRecoveryStart, Site: 2, At: tat(30)},
		{Type: obs.EvControl1, Site: 2, Actual: 2, At: tat(32)},
		{Type: obs.EvTxnCommit, Site: 2, Txn: 901, Class: proto.ClassControl1, At: tat(33)},
		{Type: obs.EvRecoveryDone, Site: 2, Actual: 2, At: tat(35)},
		{Type: obs.EvTxnCommit, Site: 2, Txn: 8, Class: proto.ClassUser, At: tat(40)},
	}
	m := trace.Merge(s1, s2)
	if len(m.Violations) != 0 {
		t.Fatalf("healthy trace failed to merge: %v", m.Violations)
	}
	return m
}

func failuresFor(m trace.Merged) map[string]string {
	out := map[string]string{}
	for _, f := range CheckTrace(m, TraceSuite()) {
		out[f.Invariant] = f.Detail
	}
	return out
}

func TestTraceSuiteCleanOnHealthyTrace(t *testing.T) {
	if fails := CheckTrace(healthyTrace(t), TraceSuite()); len(fails) != 0 {
		t.Fatalf("healthy trace failed invariants: %v", fails)
	}
}

func TestTraceCausalAcyclicFlagsMergeViolations(t *testing.T) {
	m := trace.Merged{Violations: []trace.Violation{{Kind: "cycle", Detail: "x"}}}
	fails := failuresFor(m)
	if _, ok := fails["trace-causal-acyclic"]; !ok {
		t.Fatalf("cycle-bearing merge passed: %v", fails)
	}
}

func TestTraceSpanCompleteFlagsDanglingStart(t *testing.T) {
	m := trace.Merge([]obs.Event{
		{Type: obs.EvSpanStart, Site: 1, Txn: 7, Span: 0x1000000000002, Detail: "client:probe", At: tat(1)},
	})
	fails := failuresFor(m)
	if d, ok := fails["trace-span-complete"]; !ok || !strings.Contains(d, "never finished") {
		t.Fatalf("dangling span start passed: %v", fails)
	}
}

func TestTraceSpanPairedFlagsServerWithoutClient(t *testing.T) {
	const sp = 0x2000000000003
	m := trace.Merge([]obs.Event{
		{Type: obs.EvSpanStart, Site: 2, Txn: 7, Span: sp, Detail: "server:write", At: tat(1)},
		{Type: obs.EvSpanFinish, Site: 2, Txn: 7, Span: sp, Detail: "server:write", At: tat(2)},
	})
	fails := failuresFor(m)
	if _, ok := fails["trace-span-paired"]; !ok {
		t.Fatalf("orphan server span passed: %v", fails)
	}
}

func TestTraceRPCAttributedFlagsRootlessPrepare(t *testing.T) {
	const sp = 0x1000000000004
	m := trace.Merge([]obs.Event{
		{Type: obs.EvSpanStart, Site: 1, Span: sp, Detail: "client:prepare", At: tat(1)},
		{Type: obs.EvSpanFinish, Site: 1, Span: sp, Detail: "client:prepare", At: tat(2)},
	})
	fails := failuresFor(m)
	if d, ok := fails["trace-rpc-attributed"]; !ok || !strings.Contains(d, "prepare") {
		t.Fatalf("rootless prepare passed: %v", fails)
	}
	// Probes outside any transaction are legitimate.
	m2 := trace.Merge([]obs.Event{
		{Type: obs.EvSpanStart, Site: 1, Span: sp + 1, Detail: "client:probe", At: tat(1)},
		{Type: obs.EvSpanFinish, Site: 1, Span: sp + 1, Detail: "client:probe", At: tat(2)},
	})
	if _, ok := failuresFor(m2)["trace-rpc-attributed"]; ok {
		t.Fatalf("rootless probe was flagged; probes are not txn-scoped")
	}
}

func TestTraceLamportMonotoneFlagsRegression(t *testing.T) {
	m := trace.Merged{Events: []obs.Event{
		{Type: obs.EvSpanStart, Site: 1, Span: 1, Lamport: 9, Detail: "client:probe", At: tat(1)},
		{Type: obs.EvSpanStart, Site: 1, Span: 2, Lamport: 4, Detail: "client:probe", At: tat(2)},
	}}
	fails := failuresFor(m)
	if d, ok := fails["trace-lamport-monotone"]; !ok || !strings.Contains(d, "regressed") {
		t.Fatalf("lamport regression passed: %v", fails)
	}
}

func TestTraceSessionMonotoneFlagsRepeatAndRegression(t *testing.T) {
	// Two recovery completions announcing the same session is a lifecycle bug.
	m := trace.Merged{Events: []obs.Event{
		{Type: obs.EvRecoveryDone, Site: 2, Actual: 3, At: tat(1)},
		{Type: obs.EvRecoveryDone, Site: 2, Actual: 3, At: tat(2)},
	}}
	fails := failuresFor(m)
	if d, ok := fails["trace-session-monotone"]; !ok || !strings.Contains(d, "repeated session") {
		t.Fatalf("repeated recovery.done session passed: %v", fails)
	}
	// A session number going backwards is worse.
	m2 := trace.Merged{Events: []obs.Event{
		{Type: obs.EvControl1, Site: 2, Actual: 5, At: tat(1)},
		{Type: obs.EvControl1, Site: 2, Actual: 4, At: tat(2)},
	}}
	if d, ok := failuresFor(m2)["trace-session-monotone"]; !ok || !strings.Contains(d, "backwards") {
		t.Fatalf("session regression passed: %v", failuresFor(m2))
	}
	// A claim followed by its recovery-done with the SAME session is the
	// normal lifecycle and must pass.
	m3 := trace.Merged{Events: []obs.Event{
		{Type: obs.EvControl1, Site: 2, Actual: 4, At: tat(1)},
		{Type: obs.EvRecoveryDone, Site: 2, Actual: 4, At: tat(2)},
	}}
	if _, ok := failuresFor(m3)["trace-session-monotone"]; ok {
		t.Fatalf("claim + matching recovery.done was flagged")
	}
}

func TestTraceCrashExcludedFlagsCommitWhileDown(t *testing.T) {
	m := trace.Merged{Events: []obs.Event{
		{Type: obs.EvSiteCrash, Site: 2, At: tat(1)},
		{Type: obs.EvTxnCommit, Site: 2, Txn: 9, Class: proto.ClassUser, At: tat(2)},
	}}
	fails := failuresFor(m)
	if d, ok := fails["trace-crash-excluded"]; !ok || !strings.Contains(d, "committed user txn") {
		t.Fatalf("user commit while crashed passed: %v", fails)
	}
}

func TestTraceCrashExcludedFlagsSuccessfulServeWhileDown(t *testing.T) {
	m := trace.Merged{Events: []obs.Event{
		{Type: obs.EvSiteCrash, Site: 2, At: tat(1)},
		{Type: obs.EvSpanFinish, Site: 2, Txn: 9, Span: 5, Detail: "server:write", At: tat(2)},
	}}
	fails := failuresFor(m)
	if d, ok := fails["trace-crash-excluded"]; !ok || !strings.Contains(d, "served") {
		t.Fatalf("successful serve while crashed passed: %v", fails)
	}
}

func TestTraceCrashExcludedAllowsRefusalsAndDecisions(t *testing.T) {
	// A crashed site refusing service (error finish) or answering decision
	// queries from its log is fine; so is its own control-1 recovery commit.
	m := trace.Merged{Events: []obs.Event{
		{Type: obs.EvSiteCrash, Site: 2, At: tat(1)},
		{Type: obs.EvSpanFinish, Site: 2, Txn: 9, Span: 5, Detail: "server:write!site-down", At: tat(2)},
		{Type: obs.EvRecoveryStart, Site: 2, At: tat(3)},
		{Type: obs.EvSpanFinish, Site: 2, Txn: 9, Span: 6, Detail: "server:decision", At: tat(4)},
		{Type: obs.EvTxnCommit, Site: 2, Txn: 901, Class: proto.ClassControl1, At: tat(5)},
		{Type: obs.EvRecoveryDone, Site: 2, Actual: 2, At: tat(6)},
	}}
	if d, ok := failuresFor(m)["trace-crash-excluded"]; ok {
		t.Fatalf("legitimate crash-window activity was flagged: %v", d)
	}
}

func TestTraceCrashExcludedAllowsServingDuringRecovery(t *testing.T) {
	// §3.4 recovery runs through the live process: once recovery has
	// started, the site legitimately serves RPCs — presumed-abort
	// processing of transactions orphaned by the crash arrives before the
	// claim commits (a peer aborting a transaction whose write the dead
	// incarnation left in doubt).
	m := trace.Merged{Events: []obs.Event{
		{Type: obs.EvSiteCrash, Site: 2, At: tat(1)},
		{Type: obs.EvRecoveryStart, Site: 2, At: tat(2)},
		{Type: obs.EvSpanStart, Site: 2, Txn: 9, Span: 5, Detail: "server:abort", At: tat(3)},
		{Type: obs.EvSpanFinish, Site: 2, Txn: 9, Span: 5, Detail: "server:abort", At: tat(4)},
		{Type: obs.EvSpanStart, Site: 2, Txn: 10, Span: 6, Detail: "server:write", At: tat(5)},
		{Type: obs.EvSpanFinish, Site: 2, Txn: 10, Span: 6, Detail: "server:write", At: tat(6)},
		{Type: obs.EvControl1, Site: 2, Actual: 2, At: tat(7)},
		{Type: obs.EvRecoveryDone, Site: 2, Actual: 2, At: tat(8)},
	}}
	if d, ok := failuresFor(m)["trace-crash-excluded"]; ok {
		t.Fatalf("serving during recovery was flagged: %v", d)
	}
}

func TestTraceCrashExcludedUserCommitWindowEndsAtClaim(t *testing.T) {
	// A user commit between the type-1 claim and recovery.done is the
	// paper's normal mode — the site is nominally up while copiers still
	// refresh. Before the claim commits it is still a violation.
	during := trace.Merged{Events: []obs.Event{
		{Type: obs.EvSiteCrash, Site: 2, At: tat(1)},
		{Type: obs.EvRecoveryStart, Site: 2, At: tat(2)},
		{Type: obs.EvTxnCommit, Site: 2, Txn: 9, Class: proto.ClassUser, At: tat(3)},
	}}
	if d, ok := failuresFor(during)["trace-crash-excluded"]; !ok || !strings.Contains(d, "committed user txn") {
		t.Fatalf("pre-claim user commit passed: %v", d)
	}
	after := trace.Merged{Events: []obs.Event{
		{Type: obs.EvSiteCrash, Site: 2, At: tat(1)},
		{Type: obs.EvRecoveryStart, Site: 2, At: tat(2)},
		{Type: obs.EvControl1, Site: 2, Actual: 2, At: tat(3)},
		{Type: obs.EvTxnCommit, Site: 2, Txn: 9, Class: proto.ClassUser, At: tat(4)},
		{Type: obs.EvRecoveryDone, Site: 2, Actual: 2, At: tat(5)},
	}}
	if d, ok := failuresFor(after)["trace-crash-excluded"]; ok {
		t.Fatalf("post-claim user commit was flagged: %v", d)
	}
}

func TestTraceCrashExcludedFlagsDoneWithoutStart(t *testing.T) {
	m := trace.Merged{Events: []obs.Event{
		{Type: obs.EvRecoveryDone, Site: 2, Actual: 2, At: tat(1)},
	}}
	fails := failuresFor(m)
	if d, ok := fails["trace-crash-excluded"]; !ok || !strings.Contains(d, "without a recovery start") {
		t.Fatalf("recovery done without start passed: %v", fails)
	}
}

// TestTraceKillCutForgivesLostSpanFinish: a span side left open when its
// site's export was cut by SIGKILL is lost data, not a protocol violation —
// but only in the presence of the kill-cut marker.
func TestTraceKillCutForgivesLostSpanFinish(t *testing.T) {
	const sp = 0x2000000000011 // allocated at site 2
	open := []obs.Event{
		{Type: obs.EvSpanStart, Site: 2, Peer: 1, Txn: 7, Span: sp, Detail: "client:write", At: tat(1)},
	}
	withMarker := append(append([]obs.Event(nil), open...),
		obs.Event{Type: obs.EvSiteCrash, Site: 2, Detail: obs.DetailSigkill, At: tat(2)})

	if fails := failuresFor(trace.Merge(open)); fails["trace-span-complete"] == "" {
		t.Fatalf("open span without a kill marker passed: %v", fails)
	}
	if fails := failuresFor(trace.Merge(withMarker)); fails["trace-span-complete"] != "" {
		t.Fatalf("kill-cut open span flagged: %v", fails)
	}

	// The forgiveness is per-site: an open span at a SURVIVOR is still a
	// violation even when some other site was killed.
	survivor := []obs.Event{
		{Type: obs.EvSpanStart, Site: 1, Peer: 2, Txn: 7, Span: 0x1000000000012, Detail: "client:write", At: tat(1)},
		{Type: obs.EvSiteCrash, Site: 2, Detail: obs.DetailSigkill, At: tat(2)},
	}
	if fails := failuresFor(trace.Merge(survivor)); fails["trace-span-complete"] == "" {
		t.Fatalf("survivor's open span forgiven by another site's kill: %v", fails)
	}
}

// TestTraceKillCutForgivesOrphanServerSpan: a server span whose client side
// died unflushed inside a SIGKILLed origin process is forgiven; the same
// orphan without a kill marker for the origin site is not.
func TestTraceKillCutForgivesOrphanServerSpan(t *testing.T) {
	const sp = 0x2000000000013 // origin: site 2
	orphan := []obs.Event{
		{Type: obs.EvSpanStart, Site: 1, Peer: 2, Txn: 7, Span: sp, Detail: "server:write", At: tat(1)},
		{Type: obs.EvSpanFinish, Site: 1, Peer: 2, Txn: 7, Span: sp, Detail: "server:write", At: tat(2)},
	}
	if fails := failuresFor(trace.Merge(orphan)); fails["trace-span-paired"] == "" {
		t.Fatalf("orphan server span passed without kill marker: %v", fails)
	}
	killed := []obs.Event{{Type: obs.EvSiteCrash, Site: 2, Detail: obs.DetailSigkill, At: tat(3)}}
	if fails := failuresFor(trace.Merge(orphan, killed)); fails["trace-span-paired"] != "" {
		t.Fatalf("orphan server span from killed origin flagged: %v", fails)
	}
	// A plain (in-process) crash does not forgive: /crash flushes exports,
	// so the client side should have been recorded.
	crashed := []obs.Event{{Type: obs.EvSiteCrash, Site: 2, At: tat(3)}}
	if fails := failuresFor(trace.Merge(orphan, crashed)); fails["trace-span-paired"] == "" {
		t.Fatalf("orphan server span forgiven by a non-kill crash: %v", fails)
	}
}

// TestTraceKillCutResetsLamport: a SIGKILLed process restarts with a fresh
// clock, so its post-restart stamps may regress across the marker — and
// only across the marker.
func TestTraceKillCutResetsLamport(t *testing.T) {
	const sp1, sp2 = 0x2000000000014, 0x2000000000015
	mk := func(detail string) []obs.Event {
		return []obs.Event{
			{Type: obs.EvSpanStart, Site: 2, Txn: 7, Span: sp1, Lamport: 9, Detail: "client:probe", At: tat(1)},
			{Type: obs.EvSpanFinish, Site: 2, Txn: 7, Span: sp1, Lamport: 9, Detail: "client:probe", At: tat(2)},
			{Type: obs.EvSiteCrash, Site: 2, Detail: detail, At: tat(3)},
			{Type: obs.EvSpanStart, Site: 2, Txn: 8, Span: sp2, Lamport: 2, Detail: "client:probe", At: tat(4)},
			{Type: obs.EvSpanFinish, Site: 2, Txn: 8, Span: sp2, Lamport: 2, Detail: "client:probe", At: tat(5)},
		}
	}
	if fails := failuresFor(trace.Merge(mk(obs.DetailSigkill))); fails["trace-lamport-monotone"] != "" {
		t.Fatalf("post-kill clock restart flagged: %v", fails)
	}
	if fails := failuresFor(trace.Merge(mk(""))); fails["trace-lamport-monotone"] == "" {
		t.Fatalf("clock regression without a kill marker passed: %v", fails)
	}
}
