package chaos

import (
	"fmt"

	"siterecovery/internal/obs"
	"siterecovery/internal/proto"
	"siterecovery/internal/trace"
)

// Trace-level invariants: the seven-check suite run over a causally merged
// multi-process trace (trace.Merge of per-site JSONL exports) instead of
// live cluster state. This is how the chaos contract extends to the real
// srnode TCP cluster, where no single process holds the whole state: the
// ROADMAP's "seven invariants checked post-quiesce from exported traces".

// TraceInvariant is one named check over a merged trace.
type TraceInvariant struct {
	Name  string
	Check func(trace.Merged) error
}

// TraceSuite is the full trace-level invariant suite.
func TraceSuite() []TraceInvariant {
	return []TraceInvariant{
		TraceCausalAcyclic(),
		TraceSpanComplete(),
		TraceSpanPaired(),
		TraceRPCAttributed(),
		TraceLamportMonotone(),
		TraceSessionMonotone(),
		TraceCrashExcluded(),
	}
}

// CheckTrace runs every invariant in the suite against a merged trace.
func CheckTrace(m trace.Merged, invariants []TraceInvariant) []Failure {
	var out []Failure
	for _, inv := range invariants {
		if err := inv.Check(m); err != nil {
			out = append(out, Failure{Invariant: inv.Name, Detail: err.Error()})
		}
	}
	return out
}

// TraceCausalAcyclic requires the merge itself to have succeeded: no
// happens-before cycles, no span pairings that disagree.
func TraceCausalAcyclic() TraceInvariant {
	return TraceInvariant{Name: "trace-causal-acyclic", Check: func(m trace.Merged) error {
		if len(m.Violations) > 0 {
			return fmt.Errorf("merge reported %d causality violations; first: %v", len(m.Violations), m.Violations[0])
		}
		return nil
	}}
}

// TraceSpanComplete requires every span side that started to also finish:
// an RPC with a start and no finish means a handler or caller vanished
// without reporting an outcome (events emitted before a crash are still
// exported, so only genuinely lost outcomes trip this).
func TraceSpanComplete() TraceInvariant {
	return TraceInvariant{Name: "trace-span-complete", Check: func(m trace.Merged) error {
		type key struct {
			span uint64
			side string
		}
		open := map[key]obs.Event{}
		for _, e := range m.Events {
			side, _, _, ok := obs.SpanSide(e)
			if !ok {
				continue
			}
			k := key{e.Span, side}
			switch e.Type {
			case obs.EvSpanStart:
				open[k] = e
			case obs.EvSpanFinish:
				delete(open, k)
			}
		}
		if len(open) > 0 {
			for k, e := range open {
				return fmt.Errorf("%d unfinished span sides; e.g. span %x %s side started at site%d and never finished",
					len(open), k.span, k.side, e.Site)
			}
		}
		return nil
	}}
}

// TraceSpanPaired requires every server-side span to have a matching
// client side: a request cannot be served without someone having sent it
// (the client records its start before writing the frame).
func TraceSpanPaired() TraceInvariant {
	return TraceInvariant{Name: "trace-span-paired", Check: func(m trace.Merged) error {
		clients := map[uint64]bool{}
		for _, e := range m.Events {
			if side, _, _, ok := obs.SpanSide(e); ok && side == obs.SideClient {
				clients[e.Span] = true
			}
		}
		for _, e := range m.Events {
			side, _, _, ok := obs.SpanSide(e)
			if ok && side == obs.SideServer && !clients[e.Span] {
				return fmt.Errorf("span %x was served at site%d but no client side recorded sending it", e.Span, e.Site)
			}
		}
		return nil
	}}
}

// TraceRPCAttributed requires every transaction-scoped RPC — data
// operations and the whole 2PC vocabulary — to carry a root transaction, so
// nothing in the commit protocol is unattributable. Probes, decision
// queries, and fetch traffic may legitimately run outside a transaction.
func TraceRPCAttributed() TraceInvariant {
	txnScoped := map[string]bool{
		"read": true, "write": true, "batch": true,
		"prepare": true, "commit": true, "abort": true,
	}
	return TraceInvariant{Name: "trace-rpc-attributed", Check: func(m trace.Merged) error {
		for _, e := range m.Events {
			_, kind, _, ok := obs.SpanSide(e)
			if ok && txnScoped[kind] && e.Txn == 0 {
				return fmt.Errorf("%s RPC span %x at site%d has no root transaction", kind, e.Span, e.Site)
			}
		}
		return nil
	}}
}

// TraceLamportMonotone requires each site's span stamps to be
// non-decreasing in its own emission order: the high-water commit seq is a
// maximum, so a site observing it go backwards means a clock bug.
func TraceLamportMonotone() TraceInvariant {
	return TraceInvariant{Name: "trace-lamport-monotone", Check: func(m trace.Merged) error {
		high := map[proto.SiteID]uint64{}
		for _, e := range m.Events {
			if e.Lamport == 0 {
				continue
			}
			if e.Lamport < high[e.Site] {
				return fmt.Errorf("site%d Lamport stamp regressed %d -> %d at %v span %x",
					e.Site, high[e.Site], e.Lamport, e.Type, e.Span)
			}
			high[e.Site] = e.Lamport
		}
		return nil
	}}
}

// TraceSessionMonotone requires each site's session numbers to advance per
// the §3.2 convention that makes stale operations detectable: sessions never
// go backwards, and no session number is announced twice by the same kind of
// event (two type-1 claims, or two recovery completions, of one session is a
// lifecycle bug). A claim and its matching recovery-done legitimately carry
// the SAME session — the claim installs the number the completion reports.
func TraceSessionMonotone() TraceInvariant {
	return TraceInvariant{Name: "trace-session-monotone", Check: func(m trace.Merged) error {
		type key struct {
			site proto.SiteID
			typ  obs.EventType
		}
		last := map[proto.SiteID]proto.Session{}
		lastByType := map[key]proto.Session{}
		for _, e := range m.Events {
			if e.Type != obs.EvControl1 && e.Type != obs.EvRecoveryDone {
				continue
			}
			if e.Actual == 0 {
				continue
			}
			if e.Actual < last[e.Site] {
				return fmt.Errorf("site%d session went backwards: %d then %d (%v)",
					e.Site, last[e.Site], e.Actual, e.Type)
			}
			k := key{e.Site, e.Type}
			if e.Actual <= lastByType[k] {
				return fmt.Errorf("site%d %v repeated session %d (previous %d)",
					e.Site, e.Type, e.Actual, lastByType[k])
			}
			last[e.Site] = e.Actual
			lastByType[k] = e.Actual
		}
		return nil
	}}
}

// TraceCrashExcluded requires the crash/recovery lifecycle to hold per
// site: a recovery completion must follow a recovery start, and between a
// site's crash and its next recovery completion the site commits no USER
// transactions and SERVES no RPC successfully — a fail-stopped site answers
// nothing (its transport may still record failed server spans, since
// answering ErrSiteDown is how the in-process crash model refuses service).
// Two recovery-mandated exceptions: the site's own control transactions (the
// type-1 claim commits before the site is operational — that IS recovery),
// and served decision queries (the paper requires a restarted coordinator to
// answer from its stable log so cooperative termination can unblock
// participants).
func TraceCrashExcluded() TraceInvariant {
	return TraceInvariant{Name: "trace-crash-excluded", Check: func(m trace.Merged) error {
		down := map[proto.SiteID]bool{}
		started := map[proto.SiteID]bool{}
		for _, e := range m.Events {
			switch e.Type {
			case obs.EvSiteCrash:
				down[e.Site] = true
			case obs.EvRecoveryStart:
				started[e.Site] = true
			case obs.EvRecoveryDone:
				if !started[e.Site] {
					return fmt.Errorf("site%d completed recovery without a recovery start", e.Site)
				}
				down[e.Site] = false
			case obs.EvTxnCommit:
				if down[e.Site] && e.Class == proto.ClassUser {
					return fmt.Errorf("site%d committed user txn%d while crashed", e.Site, e.Txn)
				}
			case obs.EvSpanFinish:
				side, kind, reason, _ := obs.SpanSide(e)
				if down[e.Site] && side == obs.SideServer && reason == "" && kind != "decision" {
					return fmt.Errorf("site%d successfully served a %s RPC (span %x) while crashed", e.Site, kind, e.Span)
				}
			}
		}
		return nil
	}}
}
