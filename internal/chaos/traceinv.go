package chaos

import (
	"fmt"

	"siterecovery/internal/obs"
	"siterecovery/internal/proto"
	"siterecovery/internal/trace"
)

// Trace-level invariants: the seven-check suite run over a causally merged
// multi-process trace (trace.Merge of per-site JSONL exports) instead of
// live cluster state. This is how the chaos contract extends to the real
// srnode TCP cluster, where no single process holds the whole state: the
// ROADMAP's "seven invariants checked post-quiesce from exported traces".

// TraceInvariant is one named check over a merged trace.
type TraceInvariant struct {
	Name  string
	Check func(trace.Merged) error
}

// TraceSuite is the full trace-level invariant suite.
func TraceSuite() []TraceInvariant {
	return []TraceInvariant{
		TraceCausalAcyclic(),
		TraceSpanComplete(),
		TraceSpanPaired(),
		TraceRPCAttributed(),
		TraceLamportMonotone(),
		TraceSessionMonotone(),
		TraceCrashExcluded(),
	}
}

// CheckTrace runs every invariant in the suite against a merged trace.
func CheckTrace(m trace.Merged, invariants []TraceInvariant) []Failure {
	var out []Failure
	for _, inv := range invariants {
		if err := inv.Check(m); err != nil {
			out = append(out, Failure{Invariant: inv.Name, Detail: err.Error()})
		}
	}
	return out
}

// TraceCausalAcyclic requires the merge itself to have succeeded: no
// happens-before cycles, no span pairings that disagree.
func TraceCausalAcyclic() TraceInvariant {
	return TraceInvariant{Name: "trace-causal-acyclic", Check: func(m trace.Merged) error {
		if len(m.Violations) > 0 {
			return fmt.Errorf("merge reported %d causality violations; first: %v", len(m.Violations), m.Violations[0])
		}
		return nil
	}}
}

// TraceSpanComplete requires every span side that started to also finish:
// an RPC with a start and no finish means a handler or caller vanished
// without reporting an outcome (events emitted before a crash are still
// exported, so only genuinely lost outcomes trip this).
//
// Exception: a SIGKILLed process takes its unflushed export suffix with it.
// When a kill-cut marker (EvSiteCrash with DetailSigkill) passes, span sides
// still open AT THAT SITE are dropped — the finish was lost with the
// process, not withheld by it.
func TraceSpanComplete() TraceInvariant {
	return TraceInvariant{Name: "trace-span-complete", Check: func(m trace.Merged) error {
		type key struct {
			span uint64
			side string
		}
		open := map[key]obs.Event{}
		for _, e := range m.Events {
			if e.Type == obs.EvSiteCrash && e.Detail == obs.DetailSigkill {
				for k, o := range open {
					if o.Site == e.Site {
						delete(open, k)
					}
				}
				continue
			}
			side, _, _, ok := obs.SpanSide(e)
			if !ok {
				continue
			}
			k := key{e.Span, side}
			switch e.Type {
			case obs.EvSpanStart:
				open[k] = e
			case obs.EvSpanFinish:
				delete(open, k)
			}
		}
		if len(open) > 0 {
			for k, e := range open {
				return fmt.Errorf("%d unfinished span sides; e.g. span %x %s side started at site%d and never finished",
					len(open), k.span, k.side, e.Site)
			}
		}
		return nil
	}}
}

// TraceSpanPaired requires every server-side span to have a matching
// client side: a request cannot be served without someone having sent it
// (the client records its start before writing the frame).
//
// Exception: a span ID encodes its allocating site (obs.SpanOrigin). When
// that site was SIGKILLed (a kill-cut marker appears in its stream), the
// client-side record may have died unflushed in the killed process's
// buffer even though the request escaped onto the wire — an orphan server
// span from a killed origin is forgiven.
func TraceSpanPaired() TraceInvariant {
	return TraceInvariant{Name: "trace-span-paired", Check: func(m trace.Merged) error {
		clients := map[uint64]bool{}
		killed := map[proto.SiteID]bool{}
		for _, e := range m.Events {
			if e.Type == obs.EvSiteCrash && e.Detail == obs.DetailSigkill {
				killed[e.Site] = true
			}
			if side, _, _, ok := obs.SpanSide(e); ok && side == obs.SideClient {
				clients[e.Span] = true
			}
		}
		for _, e := range m.Events {
			side, _, _, ok := obs.SpanSide(e)
			if ok && side == obs.SideServer && !clients[e.Span] {
				if killed[obs.SpanOrigin(e.Span)] {
					continue
				}
				return fmt.Errorf("span %x was served at site%d but no client side recorded sending it", e.Span, e.Site)
			}
		}
		return nil
	}}
}

// TraceRPCAttributed requires every transaction-scoped RPC — data
// operations and the whole 2PC vocabulary — to carry a root transaction, so
// nothing in the commit protocol is unattributable. Probes, decision
// queries, and fetch traffic may legitimately run outside a transaction.
func TraceRPCAttributed() TraceInvariant {
	txnScoped := map[string]bool{
		"read": true, "write": true, "batch": true,
		"prepare": true, "commit": true, "abort": true,
	}
	return TraceInvariant{Name: "trace-rpc-attributed", Check: func(m trace.Merged) error {
		for _, e := range m.Events {
			_, kind, _, ok := obs.SpanSide(e)
			if ok && txnScoped[kind] && e.Txn == 0 {
				return fmt.Errorf("%s RPC span %x at site%d has no root transaction", kind, e.Span, e.Site)
			}
		}
		return nil
	}}
}

// TraceLamportMonotone requires each site's span stamps to be
// non-decreasing in its own emission order: the high-water commit seq is a
// maximum, so a site observing it go backwards means a clock bug.
//
// A kill-cut marker resets the site's high-water mark: a SIGKILLed process
// restarts with a fresh clock, and the prepare-time MaxSeq handshake (not
// the dead process's memory) is what pulls it forward again.
func TraceLamportMonotone() TraceInvariant {
	return TraceInvariant{Name: "trace-lamport-monotone", Check: func(m trace.Merged) error {
		high := map[proto.SiteID]uint64{}
		for _, e := range m.Events {
			if e.Type == obs.EvSiteCrash && e.Detail == obs.DetailSigkill {
				delete(high, e.Site)
				continue
			}
			if e.Lamport == 0 {
				continue
			}
			if e.Lamport < high[e.Site] {
				return fmt.Errorf("site%d Lamport stamp regressed %d -> %d at %v span %x",
					e.Site, high[e.Site], e.Lamport, e.Type, e.Span)
			}
			high[e.Site] = e.Lamport
		}
		return nil
	}}
}

// TraceSessionMonotone requires each site's session numbers to advance per
// the §3.2 convention that makes stale operations detectable: sessions never
// go backwards, and no session number is announced twice by the same kind of
// event (two type-1 claims, or two recovery completions, of one session is a
// lifecycle bug). A claim and its matching recovery-done legitimately carry
// the SAME session — the claim installs the number the completion reports.
func TraceSessionMonotone() TraceInvariant {
	return TraceInvariant{Name: "trace-session-monotone", Check: func(m trace.Merged) error {
		type key struct {
			site proto.SiteID
			typ  obs.EventType
		}
		last := map[proto.SiteID]proto.Session{}
		lastByType := map[key]proto.Session{}
		for _, e := range m.Events {
			if e.Type != obs.EvControl1 && e.Type != obs.EvRecoveryDone {
				continue
			}
			if e.Actual == 0 {
				continue
			}
			if e.Actual < last[e.Site] {
				return fmt.Errorf("site%d session went backwards: %d then %d (%v)",
					e.Site, last[e.Site], e.Actual, e.Type)
			}
			k := key{e.Site, e.Type}
			if e.Actual <= lastByType[k] {
				return fmt.Errorf("site%d %v repeated session %d (previous %d)",
					e.Site, e.Type, e.Actual, lastByType[k])
			}
			last[e.Site] = e.Actual
			lastByType[k] = e.Actual
		}
		return nil
	}}
}

// TraceCrashExcluded requires the crash/recovery lifecycle to hold per
// site, with two windows of different strictness:
//
//   - DEAD (crash → next recovery.start): a fail-stopped site serves no
//     RPC successfully — its transport may still record failed server
//     spans, since answering ErrSiteDown is how the in-process crash model
//     refuses service.
//   - DOWN (crash → the site's next type-1 claim commit, recovery.done as
//     backstop): the site commits no USER transactions. It may serve RPCs:
//     §3.4 recovery runs through the live process — the claim's own 2PC,
//     presumed-abort processing of transactions orphaned by the crash, and
//     decision queries (the paper requires a restarted coordinator to
//     answer from its stable log so cooperative termination can unblock
//     participants) all legitimately complete before recovery finishes.
//     Once the claim installs the new session the site is nominally up and
//     participates in user transactions while copiers still refresh, so
//     user commits are flagged only up to the claim, not recovery.done.
//
// One crash-model exception: a server span ADMITTED before the crash (its
// server-side start precedes the site's crash event) may still finish
// successfully after it. The software crash is not atomic with respect to
// requests already past the liveness check — the handler races the crash and
// its reply may legitimately escape. Spans first seen starting while the
// site is dead get no such grace.
func TraceCrashExcluded() TraceInvariant {
	return TraceInvariant{Name: "trace-crash-excluded", Check: func(m trace.Merged) error {
		dead := map[proto.SiteID]bool{}
		down := map[proto.SiteID]bool{}
		started := map[proto.SiteID]bool{}
		admitted := map[uint64]bool{}
		for _, e := range m.Events {
			switch e.Type {
			case obs.EvSiteCrash:
				dead[e.Site] = true
				down[e.Site] = true
			case obs.EvRecoveryStart:
				started[e.Site] = true
				dead[e.Site] = false
			case obs.EvControl1:
				down[e.Site] = false
			case obs.EvRecoveryDone:
				if !started[e.Site] {
					return fmt.Errorf("site%d completed recovery without a recovery start", e.Site)
				}
				dead[e.Site] = false
				down[e.Site] = false
			case obs.EvTxnCommit:
				if down[e.Site] && e.Class == proto.ClassUser {
					return fmt.Errorf("site%d committed user txn%d while crashed", e.Site, e.Txn)
				}
			case obs.EvSpanStart:
				if side, _, _, ok := obs.SpanSide(e); ok && side == obs.SideServer {
					admitted[e.Span] = !dead[e.Site]
				}
			case obs.EvSpanFinish:
				side, kind, reason, _ := obs.SpanSide(e)
				if dead[e.Site] && side == obs.SideServer && reason == "" && kind != "decision" && !admitted[e.Span] {
					return fmt.Errorf("site%d successfully served a %s RPC (span %x) while crashed", e.Site, kind, e.Span)
				}
			}
		}
		return nil
	}}
}
