package chaos

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"siterecovery/internal/clock"
	"siterecovery/internal/core"
	"siterecovery/internal/obs"
	"siterecovery/internal/obs/export"
	"siterecovery/internal/proto"
	"siterecovery/internal/recovery"
	"siterecovery/internal/txn"
	"siterecovery/internal/workload"
)

// Options tunes a chaos run.
type Options struct {
	// Invariants is the post-run suite; DefaultSuite() if nil. Tests
	// append extra (deliberately weakened) invariants here to prove the
	// engine catches and shrinks violations.
	Invariants []Invariant
	// Batching runs user transactions in the deferred write-set mode
	// (per-site batch flush with piggybacked prepare votes). It is not part
	// of the Schedule: the same (schedule, seed) pair can be run in both
	// modes against the same invariant suite, which is exactly how the
	// batched protocol is validated.
	Batching bool
}

// RunResult is everything one chaos run produced.
type RunResult struct {
	Schedule Schedule
	// Trace is the full observability event stream as JSONL, stamped by a
	// logical step clock: byte-identical across runs of the same
	// schedule.
	Trace []byte
	Info  Info
	// Failures lists every violated invariant; empty means the run
	// passed.
	Failures []Failure
}

// Failed reports whether any invariant was violated.
func (r RunResult) Failed() bool { return len(r.Failures) > 0 }

// Run executes a schedule against a fresh cluster, strictly sequentially:
// no background detector, janitor, or copier pool runs, the network has
// zero latency, and every protocol action happens inside the step loop, so
// each (schedule, seed) pair deterministically produces one event stream.
// Copier transactions are interleaved one item at a time between steps
// (copierTick), preserving the paper's copiers-run-concurrently semantics
// without a scheduler. After the plan, Run quiesces the cluster — heals,
// resumes, recovers everything, sweeps stranded 2PC state, drains copiers,
// resolves totally failed items — and checks the invariant suite.
func Run(ctx context.Context, sched Schedule, opts Options) (RunResult, error) {
	if len(opts.Invariants) == 0 {
		opts.Invariants = DefaultSuite()
	}
	ident, err := identifyByName(sched.Identify)
	if err != nil {
		return RunResult{}, err
	}

	var traceBuf bytes.Buffer
	sink := export.NewJSONL(&traceBuf)
	hub := obs.NewHub(obs.Options{
		Clock: clock.NewStep(time.Unix(0, 0).UTC(), time.Millisecond),
		Sinks: []obs.Sink{sink},
	})
	cluster, err := core.New(core.Config{
		Sites:           sched.Sites,
		Placement:       workload.UniformPlacement(sched.Items, sched.Degree, sched.Sites, sched.Seed),
		Identify:        ident,
		Batching:        opts.Batching,
		Seed:            sched.Seed,
		MaxAttempts:     2,
		RetryBackoff:    time.Millisecond,
		LockTimeout:     25 * time.Millisecond,
		JanitorStaleAge: time.Nanosecond,
		DisableDetector: true,
		DisableJanitor:  true,
		CopierWorkers:   -1,
		Obs:             hub,
	})
	if err != nil {
		return RunResult{}, err
	}
	cluster.Start()
	defer cluster.Stop()

	r := &runner{c: cluster, sessions: make(map[proto.SiteID]proto.Session)}
	for _, s := range cluster.Sites() {
		r.sessions[s] = core.InitialSession
	}

	for _, step := range sched.Steps {
		if err := ctx.Err(); err != nil {
			return RunResult{}, err
		}
		if r.apply(ctx, step) {
			r.info.StepsRun++
		} else {
			r.info.StepsSkipped++
		}
		r.copierTick(ctx)
	}
	if err := r.quiesce(ctx); err != nil {
		return RunResult{}, err
	}

	if err := sink.Flush(); err != nil {
		return RunResult{}, fmt.Errorf("flush trace: %w", err)
	}
	return RunResult{
		Schedule: sched,
		Trace:    append([]byte(nil), traceBuf.Bytes()...),
		Info:     r.info,
		Failures: Check(cluster, r.info, opts.Invariants),
	}, nil
}

// identifyByName resolves a schedule's identification strategy.
func identifyByName(name string) (recovery.Identify, error) {
	switch name {
	case "markall":
		return recovery.IdentifyMarkAll, nil
	case "versiondiff":
		return recovery.IdentifyVersionDiff, nil
	case "faillock":
		return recovery.IdentifyFailLock, nil
	case "missinglist":
		return recovery.IdentifyMissingList, nil
	default:
		return 0, fmt.Errorf("schedule: unknown identification %q", name)
	}
}

type runner struct {
	c    *core.Cluster
	info Info
	// sessions remembers each site's last known session number, the
	// observation a type-2 claim must carry.
	sessions map[proto.SiteID]proto.Session
}

// apply executes one step and reports whether it was applied (false: the
// step was invalid in the current state — shrinking removes steps, so a
// subset schedule can, say, crash an already-down site — and was skipped
// deterministically).
func (r *runner) apply(ctx context.Context, step Step) bool {
	c := r.c
	switch step.Kind {
	case StepCrash:
		s := c.Site(step.Site)
		if s == nil || !s.Up() {
			return false
		}
		if r.operationalPeer(step.Site) == 0 {
			return false // never take the last working site down
		}
		c.Crash(step.Site)
		r.info.Crashes++
		// With the failure detector disabled, the chaos engine plays the
		// observer's role: the lowest surviving operational site issues
		// the type-2 control transaction. It may fail (loss burst,
		// partition, stranded locks) — then the crashed site simply stays
		// nominally up and writes keep failing against it, which is a
		// state the protocol must also survive.
		claimer := r.operationalPeer(step.Site)
		if err := c.Site(claimer).Session.ClaimDown(ctx, step.Site, r.sessions[step.Site]); err != nil {
			r.info.FailedClaims++
		} else {
			r.info.ClaimsDown++
		}
		return true
	case StepRecover:
		s := c.Site(step.Site)
		if s == nil || s.Up() {
			return false
		}
		report, err := c.Recover(ctx, step.Site)
		if err != nil {
			// Recovery died half-way (e.g. the type-1 claim lost a race
			// with a loss burst). Fail-stop the site again so it is in a
			// known state; a later step or the quiesce retries.
			r.info.FailedRecoveries++
			c.Crash(step.Site)
			return true
		}
		r.info.Recoveries++
		r.sessions[step.Site] = report.Session
		return true
	case StepPartition:
		groups := make([][]proto.SiteID, len(step.Groups))
		for i, g := range step.Groups {
			groups[i] = append([]proto.SiteID(nil), g...)
		}
		c.Network().Partition(groups...)
		return true
	case StepHeal:
		c.Network().Heal()
		return true
	case StepLoss:
		c.Network().SetLossRate(step.Loss)
		return true
	case StepStall:
		if s := c.Site(step.Site); s != nil {
			s.Recovery.SetStalled(true)
			return true
		}
		return false
	case StepResume:
		if s := c.Site(step.Site); s != nil {
			s.Recovery.SetStalled(false)
			return true
		}
		return false
	case StepTxn:
		s := c.Site(step.Site)
		if s == nil || !s.Up() || !s.Operational() {
			return false
		}
		err := c.Exec(ctx, step.Site, func(ctx context.Context, tx *txn.Tx) error {
			for _, item := range step.Reads {
				if _, err := tx.Read(ctx, item); err != nil {
					return err
				}
			}
			for i, item := range step.Writes {
				if err := tx.Write(ctx, item, step.Values[i]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			r.info.TxnAborted++
		} else {
			r.info.TxnCommitted++
		}
		return true
	default:
		return false
	}
}

// operationalPeer returns the lowest up-and-operational site other than
// excluded, or 0 when none exists.
func (r *runner) operationalPeer(excluded proto.SiteID) proto.SiteID {
	for _, id := range r.c.Sites() {
		if id == excluded {
			continue
		}
		if s := r.c.Site(id); s.Up() && s.Operational() {
			return id
		}
	}
	return 0
}

// excludedSites returns the up sites some operational peer's committed
// session vector claims nominally down. A partitioned type-2 claim creates
// this state; the excluded site cannot detect it itself (its own vector
// copies are stale), so the runner checks from the peers' side.
func (r *runner) excludedSites() []proto.SiteID {
	var out []proto.SiteID
	for _, j := range r.c.Sites() {
		if !r.c.Site(j).Up() {
			continue // really down; the recovery loop handles it
		}
		for _, i := range r.c.Sites() {
			si := r.c.Site(i)
			if i == j || !si.Up() || !si.Operational() {
				continue
			}
			v, _, err := si.Store.Committed(proto.NSItem(j))
			if err != nil {
				continue
			}
			if proto.Session(v) == proto.NoSession {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// copierTick refreshes at most one unreadable copy per operational,
// unstalled site: the sequential stand-in for the paper's copiers running
// concurrently with user transactions.
func (r *runner) copierTick(ctx context.Context) {
	for _, id := range r.c.Sites() {
		s := r.c.Site(id)
		if !s.Up() || !s.Operational() || s.Recovery.Stalled() {
			continue
		}
		items := s.Store.UnreadableItems()
		if len(items) == 0 {
			continue
		}
		_ = s.Recovery.CopyNow(ctx, items[0]) // failures retried next tick
	}
}

// quiesce returns the cluster to a fault-free, fully recovered, drained
// state so the invariant suite checks a stable configuration.
func (r *runner) quiesce(ctx context.Context) error {
	c := r.c
	c.Network().SetLossRate(0)
	c.Network().Heal()
	for _, id := range c.Sites() {
		c.Site(id).Recovery.SetStalled(false)
	}

	// Resolve stranded 2PC state left by crashes mid-commit, then bring
	// every site back. A recovery can still fail against stranded locks
	// on the session copies; sweeping between rounds unblocks it. A site
	// can also be up but nominally down: a type-2 claim that hit a
	// partition excludes every unreachable site (§3.4's retry), and the
	// excluded site keeps running on a stale session vector, missing every
	// later control transaction. Only the §3.4 procedure re-admits it, so
	// quiesce fail-stops such sites and recovers them like real crashes.
	for round := 0; round < 8; round++ {
		for _, id := range c.Sites() {
			if s := c.Site(id); s.Up() && s.Operational() {
				s.Janitor.Sweep(ctx)
			}
		}
		for _, id := range r.excludedSites() {
			if r.operationalPeer(id) == 0 {
				continue // never fail-stop the last working site
			}
			c.Crash(id)
			r.info.ExclusionRepairs++
		}
		allUp := true
		for _, id := range c.Sites() {
			if c.Site(id).Up() {
				continue
			}
			report, err := c.Recover(ctx, id)
			if err != nil {
				// The restarted site answers decision queries from its log
				// even though its claim failed. Sweep the operational peers
				// before fail-stopping it again: transactions it coordinated
				// and never decided resolve by presumed abort only while it
				// is reachable, and its next claim may be blocked by exactly
				// the locks those transactions strand (the janitor loop
				// would catch this window in a live deployment).
				for _, pid := range c.Sites() {
					if s := c.Site(pid); s.Up() && s.Operational() {
						s.Janitor.Sweep(ctx)
					}
				}
				c.Crash(id)
				allUp = false
				continue
			}
			r.info.Recoveries++
			r.sessions[id] = report.Session
		}
		if allUp && len(r.excludedSites()) == 0 {
			break
		}
	}
	for _, id := range c.Sites() {
		if s := c.Site(id); !s.Up() || !s.Operational() {
			return fmt.Errorf("quiesce: site %v never became operational", id)
		}
	}

	// Drain data recovery. A copy can be unreachable even now when its
	// item totally failed (every replica crashed while it was current);
	// after the regular drain stalls, run the total-failure resolver.
	for round := 0; round < 8; round++ {
		for _, id := range c.Sites() {
			c.Site(id).Janitor.Sweep(ctx)
		}
		remaining := 0
		for _, id := range c.Sites() {
			remaining += c.Site(id).Recovery.DrainNow(ctx)
		}
		if remaining == 0 {
			break
		}
		if round >= 2 {
			for _, id := range c.Sites() {
				for _, item := range c.Site(id).Store.UnreadableItems() {
					if err := c.Site(id).Recovery.ResolveTotalFailure(ctx, item); err == nil {
						r.info.TotalResolved++
					}
				}
			}
		}
	}
	// One final sweep so no resolved-but-unreleased state survives into
	// the lock and WAL invariants.
	for _, id := range c.Sites() {
		c.Site(id).Janitor.Sweep(ctx)
	}
	return nil
}
