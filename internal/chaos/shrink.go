package chaos

import (
	"context"
	"fmt"
)

// RunFn executes one candidate schedule and reports the invariant failures
// it produced. Shrink uses the in-process netsim runner; the process-level
// harness (internal/chaos/proc) and tests inject their own via ShrinkWith.
type RunFn func(ctx context.Context, sched Schedule) ([]Failure, error)

// Shrink minimizes a failing schedule with ddmin (Zeller's delta
// debugging) over its steps: it repeatedly re-runs subsets of the step
// sequence and keeps any subset on which the same named invariant still
// fails, until no single chunk can be removed. The runner skips steps a
// subset made invalid (recovering an up site, crashing a down one), so
// every candidate is executable.
//
// The returned schedule reproduces a failure of the same invariant as
// failure.Invariant; log is optional progress output (one line per
// reduction).
func Shrink(ctx context.Context, sched Schedule, opts Options, failure Failure, log func(string)) (Schedule, error) {
	run := func(ctx context.Context, s Schedule) ([]Failure, error) {
		res, err := Run(ctx, s, opts)
		if err != nil {
			return nil, err
		}
		return res.Failures, nil
	}
	return ShrinkWith(ctx, sched, failure, run, log)
}

// ShrinkWith is Shrink with an injectable runner: the same ddmin loop,
// judging each candidate by whether run reports a failure of
// failure.Invariant. The runner must be deterministic for a given step
// sequence or the minimization can thrash.
func ShrinkWith(ctx context.Context, sched Schedule, failure Failure, run RunFn, log func(string)) (Schedule, error) {
	if log == nil {
		log = func(string) {}
	}
	fails := func(steps []Step) (bool, error) {
		failures, err := run(ctx, sched.WithSteps(steps))
		if err != nil {
			return false, err
		}
		for _, f := range failures {
			if f.Invariant == failure.Invariant {
				return true, nil
			}
		}
		return false, nil
	}

	// Confirm the failure reproduces at all before grinding.
	if ok, err := fails(sched.Steps); err != nil {
		return Schedule{}, err
	} else if !ok {
		return Schedule{}, fmt.Errorf("shrink: %q does not reproduce on the full schedule", failure.Invariant)
	}

	steps := append([]Step(nil), sched.Steps...)
	n := 2
	for len(steps) >= 2 {
		chunk := (len(steps) + n - 1) / n
		reduced := false

		// Try each complement (drop one chunk at a time).
		for start := 0; start < len(steps); start += chunk {
			end := min(start+chunk, len(steps))
			candidate := append(append([]Step(nil), steps[:start]...), steps[end:]...)
			if len(candidate) == 0 {
				continue
			}
			ok, err := fails(candidate)
			if err != nil {
				return Schedule{}, err
			}
			if ok {
				log(fmt.Sprintf("shrink: %d -> %d steps (dropped [%d:%d))", len(steps), len(candidate), start, end))
				steps = candidate
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(steps) {
			break // 1-minimal: no single step can be removed
		}
		n = min(n*2, len(steps))
	}
	return sched.WithSteps(steps), nil
}
