package chaos_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"siterecovery/internal/chaos"
	"siterecovery/internal/core"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestScheduleRoundTrip(t *testing.T) {
	sched := chaos.Generate(chaos.GenConfig{Seed: 3, Steps: 25})
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := sched.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := chaos.ReadScheduleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched, got) {
		t.Fatalf("round trip changed the schedule:\nwrote %+v\nread  %+v", sched, got)
	}
	if _, err := chaos.DecodeSchedule(bytes.NewBufferString(`{"version":99,"sites":1,"items":1,"degree":1}`)); err == nil {
		t.Fatal("unknown schedule version accepted")
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := chaos.Generate(chaos.GenConfig{Seed: 11, Steps: 60})
	b := chaos.Generate(chaos.GenConfig{Seed: 11, Steps: 60})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different schedules")
	}
	c := chaos.Generate(chaos.GenConfig{Seed: 12, Steps: 60})
	if reflect.DeepEqual(a.Steps, c.Steps) {
		t.Fatal("different seeds generated identical step sequences")
	}
}

// TestReplayByteIdentical is the acceptance bar for the engine: running the
// same schedule twice must export byte-identical observability traces.
func TestReplayByteIdentical(t *testing.T) {
	sched := chaos.Generate(chaos.GenConfig{Seed: 7, Steps: 40})
	first, err := chaos.Run(testCtx(t), sched, chaos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Info.Crashes == 0 {
		t.Fatalf("schedule exercised no crashes; info %+v", first.Info)
	}
	if len(first.Trace) == 0 {
		t.Fatal("run exported no events")
	}
	if first.Failed() {
		t.Fatalf("invariants violated: %v", first.Failures)
	}
	second, err := chaos.Run(testCtx(t), sched, chaos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Trace, second.Trace) {
		t.Fatalf("replay diverged: run 1 exported %d bytes, run 2 %d bytes; traces differ",
			len(first.Trace), len(second.Trace))
	}
}

// TestSoak sweeps seeds across identification strategies; every run must
// satisfy the full invariant suite. -short trims the sweep.
func TestSoak(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	steps := 50
	if testing.Short() {
		seeds = seeds[:2]
		steps = 30
	}
	for _, identify := range []string{"markall", "versiondiff"} {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", identify, seed), func(t *testing.T) {
				sched := chaos.Generate(chaos.GenConfig{Seed: seed, Steps: steps, Identify: identify})
				res, err := chaos.Run(testCtx(t), sched, chaos.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Failed() {
					// Leave a reproducer behind for debugging before
					// failing.
					path := filepath.Join(t.TempDir(), "repro.json")
					_ = sched.WriteFile(path)
					t.Fatalf("invariants violated (schedule at %s): %v\ninfo %+v", path, res.Failures, res.Info)
				}
				if res.Info.TxnCommitted == 0 {
					t.Fatalf("soak run committed nothing; info %+v", res.Info)
				}
			})
		}
	}
}

// TestSoakBatched reruns the seed sweep with the deferred write-set mode on:
// the batched flush with piggybacked prepare votes must satisfy the same
// seven invariants under crashes, partitions, and loss bursts as the eager
// protocol. -short trims the sweep.
func TestSoakBatched(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	steps := 50
	if testing.Short() {
		seeds = seeds[:2]
		steps = 30
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sched := chaos.Generate(chaos.GenConfig{Seed: seed, Steps: steps, Identify: "markall"})
			res, err := chaos.Run(testCtx(t), sched, chaos.Options{Batching: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				path := filepath.Join(t.TempDir(), "repro.json")
				_ = sched.WriteFile(path)
				t.Fatalf("invariants violated with batching (schedule at %s): %v\ninfo %+v", path, res.Failures, res.Info)
			}
			if res.Info.TxnCommitted == 0 {
				t.Fatalf("batched soak run committed nothing; info %+v", res.Info)
			}
		})
	}
}

// noCrashes is the deliberately weakened invariant of the acceptance
// criteria: it "fails" whenever the run crashed anything, standing in for
// a real protocol bug the engine must catch and shrink.
func noCrashes() chaos.Invariant {
	return chaos.Invariant{Name: "no-crashes", Check: func(_ *core.Cluster, info chaos.Info) error {
		if info.Crashes > 0 {
			return fmt.Errorf("%d crashes occurred", info.Crashes)
		}
		return nil
	}}
}

// TestWeakenedInvariantIsCaughtAndShrunk plants a failing invariant, lets
// the engine catch it, and requires the shrinker to reduce the reproducer
// to at most 25% of the original schedule.
func TestWeakenedInvariantIsCaughtAndShrunk(t *testing.T) {
	ctx := testCtx(t)
	sched := chaos.Generate(chaos.GenConfig{Seed: 7, Steps: 40})
	opts := chaos.Options{Invariants: append(chaos.DefaultSuite(), noCrashes())}

	res, err := chaos.Run(ctx, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	var planted *chaos.Failure
	for i, f := range res.Failures {
		if f.Invariant == "no-crashes" {
			planted = &res.Failures[i]
		}
	}
	if planted == nil {
		t.Fatalf("weakened invariant not caught; failures %v, info %+v", res.Failures, res.Info)
	}

	minimized, err := chaos.Shrink(ctx, sched, opts, *planted, func(s string) { t.Log(s) })
	if err != nil {
		t.Fatal(err)
	}
	if got, limit := len(minimized.Steps), len(sched.Steps)/4; got > limit {
		t.Fatalf("shrunk schedule has %d steps, want <= %d (of %d)", got, limit, len(sched.Steps))
	}
	// The minimized schedule must still reproduce the same failure.
	again, err := chaos.Run(ctx, minimized, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range again.Failures {
		if f.Invariant == "no-crashes" {
			found = true
		}
	}
	if !found {
		t.Fatalf("minimized schedule no longer fails; failures %v", again.Failures)
	}
}
