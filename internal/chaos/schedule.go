package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"siterecovery/internal/proto"
)

// ScheduleVersion is the serialization format version; bump on breaking
// changes to Schedule or Step so stale reproducer files fail loudly.
const ScheduleVersion = 1

// StepKind enumerates the fault-plan step types.
type StepKind string

// Step kinds.
const (
	// StepTxn runs one user transaction (reads then writes) at Site.
	StepTxn StepKind = "txn"
	// StepCrash fail-stops Site and has the lowest surviving operational
	// site claim it nominally down (type-2 control transaction).
	StepCrash StepKind = "crash"
	// StepRecover runs the §3.4 recovery procedure at Site.
	StepRecover StepKind = "recover"
	// StepPartition splits the network into Groups.
	StepPartition StepKind = "partition"
	// StepHeal removes all partitions.
	StepHeal StepKind = "heal"
	// StepLoss sets the network drop probability to Loss (a burst starts
	// or, with Loss 0, ends).
	StepLoss StepKind = "loss"
	// StepStall wedges Site's copier path (data recovery stops making
	// progress while the site stays operational). The process-level runner
	// maps this to wedging Site's network links mid-stream instead (bytes
	// stop flowing but connections stay open), the closest real-socket
	// analogue.
	StepStall StepKind = "stall"
	// StepResume unwedges Site's copier path (or, process-level, its links).
	StepResume StepKind = "resume"

	// StepKill SIGKILLs Site's process: unlike StepCrash, nothing at the
	// site gets to react — buffered trace exports are truncated and all
	// volatile state is lost. Only the process-level runner applies it; the
	// netsim runner skips it (no process to kill).
	StepKill StepKind = "kill"
	// StepSlow adds DelayMS of per-chunk forwarding delay on every network
	// link touching Site (a slow link rather than a dead one). DelayMS 0
	// restores full speed. Process-level runner only.
	StepSlow StepKind = "slow"
)

// Step is one serializable fault-plan action. Only the fields relevant to
// the Kind are set.
type Step struct {
	Kind    StepKind         `json:"kind"`
	Site    proto.SiteID     `json:"site,omitempty"`
	Groups  [][]proto.SiteID `json:"groups,omitempty"`
	Loss    float64          `json:"loss,omitempty"`
	DelayMS int64            `json:"delay_ms,omitempty"`
	Reads   []proto.Item     `json:"reads,omitempty"`
	Writes  []proto.Item     `json:"writes,omitempty"`
	Values  []proto.Value    `json:"values,omitempty"`
}

// String renders a step compactly for logs and shrink traces.
func (s Step) String() string {
	switch s.Kind {
	case StepTxn:
		return fmt.Sprintf("txn@%v r%v w%v", s.Site, s.Reads, s.Writes)
	case StepCrash, StepRecover, StepStall, StepResume, StepKill:
		return fmt.Sprintf("%s %v", s.Kind, s.Site)
	case StepPartition:
		return fmt.Sprintf("partition %v", s.Groups)
	case StepLoss:
		return fmt.Sprintf("loss %.2f", s.Loss)
	case StepSlow:
		return fmt.Sprintf("slow %v %dms", s.Site, s.DelayMS)
	default:
		return string(s.Kind)
	}
}

// Schedule is a self-contained, replayable fault plan: the cluster shape it
// ran against plus the step sequence. Running the same schedule twice
// produces byte-identical observability traces.
type Schedule struct {
	Version  int    `json:"version"`
	Seed     int64  `json:"seed"`
	Sites    int    `json:"sites"`
	Items    int    `json:"items"`
	Degree   int    `json:"degree"`
	Identify string `json:"identify"`
	Steps    []Step `json:"steps"`
}

// WithSteps returns a copy of the schedule carrying the given steps —
// shrinking produces candidate schedules this way, keeping the header.
func (s Schedule) WithSteps(steps []Step) Schedule {
	s.Steps = append([]Step(nil), steps...)
	return s
}

// Encode writes the schedule as indented JSON.
func (s Schedule) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the schedule to path as JSON.
func (s Schedule) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DecodeSchedule reads one schedule from r, rejecting unknown versions.
func DecodeSchedule(r io.Reader) (Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Schedule{}, fmt.Errorf("decode schedule: %w", err)
	}
	if s.Version != ScheduleVersion {
		return Schedule{}, fmt.Errorf("schedule version %d, this build reads %d", s.Version, ScheduleVersion)
	}
	if s.Sites <= 0 || s.Items <= 0 || s.Degree <= 0 {
		return Schedule{}, fmt.Errorf("schedule header invalid: sites=%d items=%d degree=%d", s.Sites, s.Items, s.Degree)
	}
	return s, nil
}

// ReadScheduleFile reads a schedule written by WriteFile.
func ReadScheduleFile(path string) (Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return Schedule{}, err
	}
	defer f.Close()
	return DecodeSchedule(f)
}
